// Replays every checked-in fuzz-corpus case (tests/corpus/<server>/, see
// tests/corpus/README.md) under all seven uniform policies and asserts the
// recorded error sites still fire. This is the corpus's regression
// guarantee: a refactor that silently kills a discovered site — renames the
// unit, removes the staging copy, changes the frame — turns the site id
// over and this test names the stale case file.
//
// Per-policy replay rule:
//   - kFailureOblivious (the recording policy): EVERY recorded site fires.
//   - other continuing policies (kBoundless, kWrap, kZeroManufacture,
//     kThreshold): at least one recorded site fires — manufactured values
//     may steer control flow off the full set, but the overflow itself is
//     policy-independent.
//   - kStandard / kBoundsCheck: the replay completes under the access
//     budget — corrupting or terminating the request is allowed (bounds
//     checking terminates before anything reaches the log), hanging the
//     harness is not.
//
// The corpus root comes from the build (FOB_CORPUS_DIR); cases regenerate
// with `fuzz_run <server> <seed> <iterations> tests/corpus`.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/harness/fuzz.h"

namespace fob {
namespace {

constexpr uint64_t kReplayBudget = 2'000'000;

// One continuing policy must preserve every recorded site; the rest of the
// continuing family must keep at least one alive.
bool RequiresAllSites(AccessPolicy policy) {
  return policy == AccessPolicy::kFailureOblivious;
}

bool IsContinuingPolicy(AccessPolicy policy) {
  switch (policy) {
    case AccessPolicy::kFailureOblivious:
    case AccessPolicy::kBoundless:
    case AccessPolicy::kWrap:
    case AccessPolicy::kZeroManufacture:
    case AccessPolicy::kThreshold:
      return true;
    case AccessPolicy::kStandard:
    case AccessPolicy::kBoundsCheck:
      return false;
  }
  return false;
}

struct LoadedCase {
  std::string path;  // for failure messages
  CorpusCase record;
};

// Reads one server's MANIFEST.tsv + case files. Malformed content is a test
// failure naming the file — the checked-in corpus must stay parseable.
std::vector<LoadedCase> LoadServerCorpus(const std::filesystem::path& dir) {
  std::vector<LoadedCase> cases;
  std::ifstream manifest(dir / "MANIFEST.tsv");
  std::string line;
  size_t line_number = 0;
  while (std::getline(manifest, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto parsed = ParseManifestLine(line);
    if (!parsed.has_value()) {
      ADD_FAILURE() << (dir / "MANIFEST.tsv").string() << ":" << line_number
                    << ": malformed manifest line '" << line << "'";
      continue;
    }
    const std::filesystem::path case_path = dir / parsed->file;
    std::ifstream case_file(case_path);
    std::string wire;
    if (!case_file || !std::getline(case_file, wire)) {
      ADD_FAILURE() << "unreadable corpus case " << case_path.string();
      continue;
    }
    auto request = ServerRequest::Deserialize(wire);
    if (!request.has_value()) {
      ADD_FAILURE() << "unparseable request in " << case_path.string();
      continue;
    }
    parsed->request = *request;
    cases.push_back({case_path.string(), std::move(*parsed)});
  }
  return cases;
}

TEST(CorpusReplayTest, EveryCheckedInCaseStillFiresItsSitesUnderEveryPolicy) {
  const std::filesystem::path root(FOB_CORPUS_DIR);
  size_t servers_with_corpus = 0;
  for (Server server : kAllServers) {
    const std::filesystem::path dir = root / ServerShortName(server);
    if (!std::filesystem::exists(dir / "MANIFEST.tsv")) {
      continue;
    }
    ++servers_with_corpus;
    std::vector<LoadedCase> cases = LoadServerCorpus(dir);
    EXPECT_FALSE(cases.empty()) << dir.string() << " has a manifest but no valid cases";
    for (const LoadedCase& loaded : cases) {
      for (AccessPolicy policy : kAllPolicies) {
        std::vector<MemSiteStat> sites =
            ExecuteRequestForSites(server, loaded.record.request, policy, kReplayBudget);
        std::set<SiteId> seen;
        for (const MemSiteStat& stat : sites) {
          seen.insert(stat.site);
        }
        if (RequiresAllSites(policy)) {
          for (SiteId id : loaded.record.sites) {
            EXPECT_EQ(seen.count(id), 1u)
                << loaded.path << ": recorded site 0x" << std::hex << id << std::dec
                << " no longer fires under " << PolicyName(policy)
                << " — the case is stale; regenerate the corpus or fix the regression";
          }
        } else if (IsContinuingPolicy(policy)) {
          size_t alive = 0;
          for (SiteId id : loaded.record.sites) {
            alive += seen.count(id);
          }
          EXPECT_GT(alive, 0u) << loaded.path << ": no recorded site fires under "
                               << PolicyName(policy);
        }
        // kStandard / kBoundsCheck: reaching this line is the assertion —
        // the replay completed under the budget instead of hanging.
      }
    }
  }
  // The repo ships corpora for the two post-paper servers; an empty sweep
  // means the build is pointed at the wrong FOB_CORPUS_DIR.
  EXPECT_GE(servers_with_corpus, 2u) << "no corpus found under " << root.string();
}

}  // namespace
}  // namespace fob
