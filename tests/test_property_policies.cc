// Property tests on the policy semantics themselves.
//
// The central § 1.1 invariants, driven by deterministic random access
// workloads rather than hand-picked cases:
//
//   isolation    under every checked policy, no sequence of out-of-bounds
//                writes to unit A ever changes the bytes of unit B (for
//                Wrap: A's bytes may change, but only A's);
//   boundless    reads observe exactly the bytes written, regardless of
//                offset — the hash-table store is a faithful sparse array;
//   wrap         accesses at offset k behave exactly like offset k mod n;
//   manufacture  failure-oblivious reads depend only on the sequence state,
//                never on other units' contents.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "src/runtime/memory.h"

namespace fob {
namespace {

class Xorshift {
 public:
  explicit Xorshift(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 2685821657736338717ull;
  }
  int64_t Offset(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo));
  }

 private:
  uint64_t state_;
};

class PolicyPropertyTest
    : public ::testing::TestWithParam<std::tuple<AccessPolicy, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyPropertyTest,
    ::testing::Combine(::testing::Values(AccessPolicy::kFailureOblivious,
                                         AccessPolicy::kBoundless, AccessPolicy::kWrap),
                       ::testing::Values(3u, 17u, 512u)));

TEST_P(PolicyPropertyTest, RandomOobWritesNeverTouchOtherUnits) {
  auto [policy, seed] = GetParam();
  Memory memory(policy);
  Ptr attacker = memory.Malloc(32, "attacker");
  Ptr victim_before = memory.Malloc(64, "victim_before");
  Ptr victim_after = memory.Malloc(64, "victim_after");
  // Note: victim blocks surround the attacker in address order (before is
  // lower by allocation order, after is higher).
  std::string before = memory.ReadBytesAsString(victim_before, 64);
  std::string after = memory.ReadBytesAsString(victim_after, 64);

  Xorshift rng(seed);
  for (int i = 0; i < 2000; ++i) {
    int64_t offset = rng.Offset(-512, 512);
    if (offset >= 0 && offset < 32) {
      continue;  // stay out of bounds for this property
    }
    memory.WriteU8(attacker + offset, static_cast<uint8_t>(rng.Next()));
  }
  EXPECT_EQ(memory.ReadBytesAsString(victim_before, 64), before);
  EXPECT_EQ(memory.ReadBytesAsString(victim_after, 64), after);
}

TEST_P(PolicyPropertyTest, InBoundsDataAlwaysSurvivesOobNoise) {
  auto [policy, seed] = GetParam();
  if (policy == AccessPolicy::kWrap) {
    GTEST_SKIP() << "wrap redirects into the unit by design";
  }
  Memory memory(policy);
  Ptr unit = memory.Malloc(128, "unit");
  std::string payload(128, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('A' + (i % 26));
  }
  memory.WriteBytes(unit, payload);
  Xorshift rng(seed * 7);
  for (int i = 0; i < 1000; ++i) {
    int64_t offset = rng.Offset(128, 4096);
    memory.WriteU8(unit + offset, static_cast<uint8_t>(rng.Next()));
  }
  EXPECT_EQ(memory.ReadBytesAsString(unit, 128), payload);
}

TEST(BoundlessPropertyTest, SparseArraySemantics) {
  // Writes at arbitrary offsets, positive and negative, read back exactly —
  // the block behaves as an unbounded sparse array (§5.1).
  Memory memory(AccessPolicy::kBoundless);
  Ptr unit = memory.Malloc(16, "sparse");
  Xorshift rng(2024);
  std::map<int64_t, uint8_t> model;
  for (int i = 0; i < 3000; ++i) {
    int64_t offset = rng.Offset(-4096, 4096);
    uint8_t value = static_cast<uint8_t>(rng.Next());
    memory.WriteU8(unit + offset, value);
    model[offset] = value;
  }
  for (const auto& [offset, value] : model) {
    EXPECT_EQ(memory.ReadU8(unit + offset), value) << "offset " << offset;
  }
}

TEST(WrapPropertyTest, EquivalentToModularArithmetic) {
  Memory memory(AccessPolicy::kWrap);
  constexpr int64_t kSize = 24;
  Ptr unit = memory.Malloc(kSize, "ring");
  uint8_t model[kSize] = {0};
  Xorshift rng(77);
  for (int i = 0; i < 4000; ++i) {
    int64_t offset = rng.Offset(-4096, 4096);
    int64_t wrapped = ((offset % kSize) + kSize) % kSize;
    if (rng.Next() % 2 == 0) {
      uint8_t value = static_cast<uint8_t>(rng.Next());
      memory.WriteU8(unit + offset, value);
      model[wrapped] = value;
    } else {
      EXPECT_EQ(memory.ReadU8(unit + offset), model[wrapped])
          << "offset " << offset << " (wraps to " << wrapped << ")";
    }
  }
}

TEST(ManufacturePropertyTest, OobReadsComeOnlyFromTheSequence) {
  // Two memories with identical sequences but totally different heap
  // contents produce identical manufactured streams.
  Memory a(AccessPolicy::kFailureOblivious);
  Memory b(AccessPolicy::kFailureOblivious);
  Ptr ua = a.Malloc(8, "a");
  a.WriteBytes(ua, "AAAAAAAA");
  Ptr ub = b.Malloc(8, "b");
  b.WriteBytes(ub, "ZZZZZZZZ");
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(a.ReadU8(ua + 100 + i), b.ReadU8(ub + 100 + i)) << i;
  }
}

TEST(ManufacturePropertyTest, WiderReadsTruncateTheSameSequence) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr unit = memory.Malloc(8, "u");
  // First manufactured value is 0, second 1, third 2: a 4-byte read
  // consumes exactly one sequence value, little-endian.
  EXPECT_EQ(memory.ReadU32(unit + 100), 0u);
  EXPECT_EQ(memory.ReadU32(unit + 100), 1u);
  EXPECT_EQ(memory.ReadU32(unit + 100), 2u);
  EXPECT_EQ(memory.ReadU64(unit + 100), 0u);
  EXPECT_EQ(memory.ReadU16(unit + 100), 1u);
}

}  // namespace
}  // namespace fob
