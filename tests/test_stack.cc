#include "src/softmem/stack.h"

#include <gtest/gtest.h>

#include <string>

#include "src/softmem/address_space.h"
#include "src/softmem/fault.h"
#include "src/softmem/object_table.h"

namespace fob {
namespace {

constexpr Addr kLow = 0x7fff0000;
constexpr size_t kSize = 64 << 10;

class StackTest : public ::testing::Test {
 protected:
  StackTest() : stack_(space_, table_, kLow, kSize) {}

  AddressSpace space_;
  ObjectTable table_;
  Stack stack_;
};

TEST_F(StackTest, PushPopBalancedFrames) {
  EXPECT_EQ(stack_.depth(), 0u);
  stack_.PushFrame("main");
  stack_.PushFrame("handler");
  EXPECT_EQ(stack_.depth(), 2u);
  EXPECT_EQ(stack_.current_function(), "handler");
  stack_.PopFrame();
  EXPECT_EQ(stack_.current_function(), "main");
  stack_.PopFrame();
  EXPECT_EQ(stack_.depth(), 0u);
}

TEST_F(StackTest, LocalsRegisteredWithQualifiedNames) {
  stack_.PushFrame("prescan");
  Addr buf = stack_.AllocLocal(64, "addr_buf");
  const DataUnit* unit = table_.LookupByAddress(buf);
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->name, "prescan::addr_buf");
  EXPECT_EQ(unit->kind, UnitKind::kStack);
  stack_.PopFrame();
}

TEST_F(StackTest, LocalsRetiredOnPop) {
  stack_.PushFrame("f");
  Addr buf = stack_.AllocLocal(32, "buf");
  stack_.PopFrame();
  EXPECT_EQ(table_.LookupByAddress(buf), nullptr);
}

TEST_F(StackTest, StackGrowsDownward) {
  stack_.PushFrame("f");
  Addr first = stack_.AllocLocal(16, "first");
  Addr second = stack_.AllocLocal(16, "second");
  EXPECT_LT(second, first);
  stack_.PopFrame();
}

TEST_F(StackTest, CanaryIntactOnNormalReturn) {
  stack_.PushFrame("f");
  Addr buf = stack_.AllocLocal(16, "buf");
  std::string data(16, 'x');  // fills the buffer exactly
  ASSERT_TRUE(space_.Write(buf, data.data(), data.size()));
  EXPECT_NO_THROW(stack_.PopFrame());
}

TEST_F(StackTest, OverrunThroughCanaryFaultsOnReturn) {
  stack_.PushFrame("vulnerable");
  Addr buf = stack_.AllocLocal(16, "buf");
  // Overrun: 16-byte buffer, 32 bytes written. The canary sits above the
  // locals, so this clobbers it.
  std::string attack(32, 'A');
  ASSERT_TRUE(space_.Write(buf, attack.data(), attack.size()));
  try {
    stack_.PopFrame();
    FAIL() << "expected stack smash fault";
  } catch (const Fault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kStackSmash);
    EXPECT_TRUE(f.possible_code_injection());
  }
  EXPECT_EQ(stack_.depth(), 0u);  // the frame is gone either way
}

TEST_F(StackTest, UncheckedPopSkipsCanary) {
  stack_.PushFrame("crashing");
  Addr buf = stack_.AllocLocal(8, "buf");
  std::string attack(64, 'B');
  ASSERT_TRUE(space_.Write(buf, attack.data(), attack.size()));
  EXPECT_NO_THROW(stack_.PopFrameUnchecked());
}

TEST_F(StackTest, LocalsAreNotCleared) {
  stack_.PushFrame("first");
  Addr a = stack_.AllocLocal(64, "buf");
  std::string junk(64, 'J');
  ASSERT_TRUE(space_.Write(a, junk.data(), junk.size()));
  stack_.PopFrame();

  stack_.PushFrame("second");
  Addr b = stack_.AllocLocal(64, "buf");
  EXPECT_EQ(b, a);  // same slot reused
  std::string leftover(64, '\0');
  ASSERT_TRUE(space_.Read(b, leftover.data(), leftover.size()));
  EXPECT_EQ(leftover, junk);  // uninitialized local sees the old bytes
  stack_.PopFrame();
}

TEST_F(StackTest, DistinctCanariesPerFrame) {
  stack_.PushFrame("a");
  stack_.PushFrame("b");
  // Corrupting b's canary must not implicate a.
  stack_.PopFrame();
  EXPECT_NO_THROW(stack_.PopFrame());
}

TEST_F(StackTest, StackOverflowFaults) {
  stack_.PushFrame("hog");
  try {
    stack_.AllocLocal(kSize * 2, "huge");
    FAIL() << "expected stack overflow";
  } catch (const Fault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kStackOverflow);
  }
}

TEST_F(StackTest, DeepNesting) {
  for (int i = 0; i < 100; ++i) {
    stack_.PushFrame("level" + std::to_string(i));
    stack_.AllocLocal(16, "local");
  }
  EXPECT_EQ(stack_.depth(), 100u);
  for (int i = 0; i < 100; ++i) {
    stack_.PopFrame();
  }
  EXPECT_EQ(stack_.depth(), 0u);
  EXPECT_EQ(table_.live_count(), 0u);
}

}  // namespace
}  // namespace fob
