#include "src/harness/site_coverage.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/runtime/memlog.h"
#include "src/runtime/policy_spec.h"

namespace fob {
namespace {

// Cross-language pins: tools/fob_analyze/site_universe.py replicates
// MakeSiteId in Python, and its golden test asserts these exact values.
// If either side drifts, the static universe's ids stop matching the
// runtime's and every coverage number becomes garbage — so both sides pin
// the same two vectors.
TEST(SiteIdPins, MatchesPythonReplica) {
  EXPECT_EQ(MakeSiteId("config_line", "load_setup", AccessKind::kRead),
            0x7F7A68C74487F124ull);
  EXPECT_EQ(MakeSiteId("", "<no frame>", AccessKind::kWrite), 0x53986E3666FD06C4ull);
}

class SiteCoverageTest : public ::testing::Test {
 protected:
  std::string WriteFile(const std::string& name, const std::string& content) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
  }

  MemSiteStat Stat(const std::string& unit, const std::string& function, bool is_write,
                   uint64_t count = 1) {
    MemSiteStat stat;
    stat.unit_name = unit;
    stat.function = function;
    stat.is_write = is_write;
    stat.count = count;
    stat.site = MakeSiteId(unit, function, is_write ? AccessKind::kWrite : AccessKind::kRead);
    return stat;
  }
};

TEST_F(SiteCoverageTest, LoadsUniverseFromHexIds) {
  const std::string path = WriteFile(
      "universe.json",
      "{\n \"schema\": 1,\n \"unit_count\": 2, \"frame_count\": 1,\n \"sites\": [\n"
      "  {\"id\": \"0x7f7a68c74487f124\", \"unit\": \"config_line\","
      " \"frame\": \"load_setup\", \"kind\": \"read\"},\n"
      "  {\"id\": \"0x53986e3666fd06c4\", \"unit\": \"\","
      " \"frame\": \"<no frame>\", \"kind\": \"write\"}\n ]\n}\n");
  auto universe = LoadStaticSiteUniverse(path);
  ASSERT_TRUE(universe.has_value());
  EXPECT_EQ(universe->size(), 2u);
  EXPECT_EQ(universe->units, 2u);
  EXPECT_EQ(universe->frames, 1u);
  EXPECT_TRUE(universe->Contains(0x7F7A68C74487F124ull));
  EXPECT_TRUE(universe->Contains(0x53986E3666FD06C4ull));
  EXPECT_FALSE(universe->Contains(0x1ull));
}

TEST_F(SiteCoverageTest, MissingOrMalformedUniverseIsNullopt) {
  EXPECT_FALSE(LoadStaticSiteUniverse(::testing::TempDir() + "no_such_file.json").has_value());
  const std::string bad =
      WriteFile("bad.json", "{\"sites\": [{\"id\": \"not-hex-at-all\"}]}");
  EXPECT_FALSE(LoadStaticSiteUniverse(bad).has_value());
  const std::string empty = WriteFile("empty.json", "{\"sites\": []}");
  EXPECT_FALSE(LoadStaticSiteUniverse(empty).has_value());
}

TEST_F(SiteCoverageTest, CoverageDeduplicatesAndSplitsPhantoms) {
  StaticSiteUniverse universe;
  const SiteId known = MakeSiteId("config_line", "load_setup", AccessKind::kRead);
  universe.ids = {known, MakeSiteId("", "<no frame>", AccessKind::kWrite)};

  std::vector<MemSiteStat> exercised = {
      Stat("config_line", "load_setup", /*is_write=*/false, 7),
      Stat("config_line", "load_setup", /*is_write=*/false, 3),  // duplicate site
      Stat("ghost_unit", "load_setup", /*is_write=*/true),       // phantom
  };
  SiteCoverage coverage = ComputeSiteCoverage(exercised, universe);
  EXPECT_EQ(coverage.exercised, 1u);
  EXPECT_EQ(coverage.universe, 2u);
  ASSERT_EQ(coverage.phantoms.size(), 1u);
  EXPECT_EQ(coverage.phantoms[0].unit_name, "ghost_unit");

  const std::string summary = coverage.Summary();
  EXPECT_NE(summary.find("site coverage: 1/2 static sites exercised"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("50.00%"), std::string::npos) << summary;
  EXPECT_NE(summary.find("PHANTOM"), std::string::npos) << summary;
}

TEST_F(SiteCoverageTest, CleanCoverageSummaryHasNoPhantomTalk) {
  StaticSiteUniverse universe;
  universe.ids = {MakeSiteId("config_line", "load_setup", AccessKind::kRead)};
  SiteCoverage coverage = ComputeSiteCoverage(
      {Stat("config_line", "load_setup", /*is_write=*/false)}, universe);
  EXPECT_EQ(coverage.Summary(), "site coverage: 1/1 static sites exercised (100.00%)");
}

TEST_F(SiteCoverageTest, DynamicDumpRoundTripsThroughTheLoader) {
  // The dynamic dump uses the same "id": "0x..." shape as the static
  // universe, so the loader doubles as its parser — which is exactly how a
  // phantom check can diff the two files.
  std::vector<MemSiteStat> exercised = {
      Stat("config_line", "load_setup", /*is_write=*/false),
      Stat("config_line", "load_setup", /*is_write=*/false),  // deduplicated
      Stat("", "<no frame>", /*is_write=*/true),
  };
  const std::string json = DynamicSitesJson(exercised);
  EXPECT_NE(json.find("\"kind\": \"read\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"\""), std::string::npos);

  const std::string path = WriteFile("dynamic.json", json);
  auto parsed = LoadStaticSiteUniverse(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(parsed->Contains(MakeSiteId("config_line", "load_setup", AccessKind::kRead)));
  EXPECT_TRUE(parsed->Contains(MakeSiteId("", "<no frame>", AccessKind::kWrite)));
}

TEST_F(SiteCoverageTest, DynamicDumpEscapesJsonMetacharacters) {
  MemSiteStat stat = Stat("unit\"with\\quote", "frame\nline", /*is_write=*/true);
  const std::string json = DynamicSitesJson({stat});
  EXPECT_NE(json.find("unit\\\"with\\\\quote"), std::string::npos) << json;
  EXPECT_NE(json.find("frame\\nline"), std::string::npos) << json;
}

TEST_F(SiteCoverageTest, DefaultPathPrefersEnvOverride) {
  const std::string path = WriteFile("override.json", "{}");
  ::setenv("FOB_SITES_STATIC", path.c_str(), 1);
  EXPECT_EQ(DefaultUniversePath(), path);
  ::setenv("FOB_SITES_STATIC", (path + ".does-not-exist").c_str(), 1);
  EXPECT_EQ(DefaultUniversePath(), "");
  ::unsetenv("FOB_SITES_STATIC");
}

}  // namespace
}  // namespace fob
