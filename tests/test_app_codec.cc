// mini codec-gateway server (post-§4 matrix row): the undersized UTF-7
// decode buffer under every policy — the Figure-1 class of size-calculation
// error on the *decode* side — plus the anticipated malformed-input errors
// and the fuzzer-facing charset-staging site.

#include "src/apps/codec_gateway.h"

#include <gtest/gtest.h>

#include <string>

#include "src/codec/base64.h"
#include "src/codec/utf7.h"
#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

TEST(CodecGatewayTest, FailureObliviousTruncatesTheBombOutput) {
  CodecGatewayApp app(AccessPolicy::kFailureOblivious);
  std::string bomb = MakeCodecBombUtf7();
  std::string full = MakeCodecBombUtf8();
  auto result = app.Transcode("u7to8", "utf7", bomb);
  ASSERT_TRUE(result.ok) << result.error;
  // The overflow stores were discarded: what survives is the in-bounds
  // prefix of the correct conversion, NUL-terminated by the realloc'd tail.
  EXPECT_LT(result.output.size(), full.size());
  EXPECT_EQ(result.output, full.substr(0, result.output.size()));
  EXPECT_GT(app.memory().log().write_errors(), 0u);
}

TEST(CodecGatewayTest, BoundlessRecoversTheFullConversion) {
  // §5.1 again: the out-of-bounds stores round-trip through the boundless
  // store and Realloc materializes them, so the gateway's reply is
  // byte-identical to the host codec's.
  CodecGatewayApp app(AccessPolicy::kBoundless);
  auto result = app.Transcode("u7to8", "utf7", MakeCodecBombUtf7());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.output, MakeCodecBombUtf8());
}

TEST(CodecGatewayTest, StandardCorruptsTheHeap) {
  CodecGatewayApp app(AccessPolicy::kStandard);
  RunResult result =
      RunAsProcess([&] { app.Transcode("u7to8", "utf7", MakeCodecBombUtf7()); });
  EXPECT_EQ(result.status, ExitStatus::kHeapCorruption);
}

TEST(CodecGatewayTest, BoundsCheckTerminatesAtTheFirstStore) {
  CodecGatewayApp app(AccessPolicy::kBoundsCheck);
  RunResult result =
      RunAsProcess([&] { app.Transcode("u7to8", "utf7", MakeCodecBombUtf7()); });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST(CodecGatewayTest, BenignTranscodesMatchTheHostCodecsUnderEveryPolicy) {
  const std::string utf7_sample = "Hello&AOk-!";
  const std::string wide = MakeMuttBenignFolderName();
  const std::string text = "failure oblivious";
  for (AccessPolicy policy : kAllPolicies) {
    CodecGatewayApp app(policy);
    auto u7to8 = app.Transcode("u7to8", "utf7", utf7_sample);
    EXPECT_TRUE(u7to8.ok) << PolicyName(policy);
    EXPECT_EQ(u7to8.output, *Utf7ToUtf8(utf7_sample)) << PolicyName(policy);
    auto u8to7 = app.Transcode("u8to7", "utf8", wide);
    EXPECT_TRUE(u8to7.ok) << PolicyName(policy);
    EXPECT_EQ(u8to7.output, *Utf8ToUtf7(wide)) << PolicyName(policy);
    auto b64enc = app.Transcode("b64enc", "ascii", text);
    EXPECT_TRUE(b64enc.ok) << PolicyName(policy);
    EXPECT_EQ(b64enc.output, Base64Encode(text)) << PolicyName(policy);
    auto b64dec = app.Transcode("b64dec", "ascii", Base64Encode(text));
    EXPECT_TRUE(b64dec.ok) << PolicyName(policy);
    EXPECT_EQ(b64dec.output, text) << PolicyName(policy);
  }
}

TEST(CodecGatewayTest, BenignWorkloadLogsNoMemoryErrors) {
  CodecGatewayApp app(AccessPolicy::kFailureOblivious);
  app.Transcode("u7to8", "utf7", "Hello&AOk-!");
  app.Transcode("b64enc", "ascii", "failure oblivious");
  app.Transcode("u8to7", "utf8", MakeMuttBenignFolderName());
  EXPECT_EQ(app.memory().log().total_errors(), 0u) << app.memory().log().Summary();
}

TEST(CodecGatewayTest, FailureObliviousKeepsServingAfterTheBomb) {
  CodecGatewayApp app(AccessPolicy::kFailureOblivious);
  ASSERT_TRUE(app.Transcode("u7to8", "utf7", MakeCodecBombUtf7()).ok);
  auto after = app.Transcode("b64enc", "ascii", "still here");
  EXPECT_TRUE(after.ok);
  EXPECT_EQ(after.output, Base64Encode("still here"));
  EXPECT_EQ(app.requests_served(), 2u);
}

TEST(CodecGatewayTest, MalformedInputsGetTheAnticipatedErrors) {
  CodecGatewayApp app(AccessPolicy::kFailureOblivious);
  auto bad_u7 = app.Transcode("u7to8", "utf7", "&!!");
  EXPECT_FALSE(bad_u7.ok);
  EXPECT_NE(bad_u7.error.find("malformed utf-7"), std::string::npos) << bad_u7.error;
  auto bad_u8 = app.Transcode("u8to7", "utf8", "\xff\xfe");
  EXPECT_FALSE(bad_u8.ok);
  EXPECT_NE(bad_u8.error.find("invalid utf-8"), std::string::npos) << bad_u8.error;
  auto bad_b64 = app.Transcode("b64dec", "ascii", "@@@@");
  EXPECT_FALSE(bad_b64.ok);
  EXPECT_NE(bad_b64.error.find("bad base64"), std::string::npos) << bad_b64.error;
  auto bad_dir = app.Transcode("zstd", "ascii", "x");
  EXPECT_FALSE(bad_dir.ok);
  EXPECT_NE(bad_dir.error.find("unsupported direction"), std::string::npos) << bad_dir.error;
}

TEST(CodecGatewayTest, ShippedCharsetLabelsFitTheStagingBuffer) {
  // The baseline labels ("utf7", "utf8", "ascii") must never touch the
  // charset-staging site — it is the fuzzer's to discover.
  CodecGatewayApp app(AccessPolicy::kFailureOblivious);
  for (const char* label : {"utf7", "utf8", "ascii"}) {
    app.Transcode("b64enc", label, "x");
  }
  EXPECT_EQ(app.memory().log().total_errors(), 0u) << app.memory().log().Summary();
}

TEST(CodecGatewayTest, OversizedCharsetLabelOverflowsTheStagingBuffer) {
  CodecGatewayApp app(AccessPolicy::kFailureOblivious);
  std::string label(2 * CodecGatewayApp::kCharsetBufSize, 'c');
  auto result = app.Transcode("b64enc", label, "x");
  // The label is advisory: the transcode itself still succeeds.
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.output, Base64Encode("x"));
  bool saw_charset_site = false;
  for (const auto& [id, stat] : app.memory().log().sites()) {
    if (stat.unit_name.find("charset_buf") != std::string::npos && stat.is_write) {
      saw_charset_site = true;
    }
  }
  EXPECT_TRUE(saw_charset_site) << app.memory().log().Summary();
}

}  // namespace
}  // namespace fob
