#include "src/runtime/manufactured.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace fob {
namespace {

TEST(ValueSequenceTest, PaperSequencePrefix) {
  ValueSequence seq;
  EXPECT_EQ(seq.Next(), 0u);
  EXPECT_EQ(seq.Next(), 1u);
  EXPECT_EQ(seq.Next(), 2u);
  EXPECT_EQ(seq.Next(), 0u);
  EXPECT_EQ(seq.Next(), 1u);
  EXPECT_EQ(seq.Next(), 3u);
  EXPECT_EQ(seq.Next(), 0u);
  EXPECT_EQ(seq.Next(), 1u);
  EXPECT_EQ(seq.Next(), 4u);
}

TEST(ValueSequenceTest, ZeroAndOneAreMostFrequent) {
  // §3: "the sequence is designed to return these values [0 and 1] more
  // frequently than other, less common, values."
  ValueSequence seq;
  std::map<uint64_t, int> histogram;
  for (int i = 0; i < 3000; ++i) {
    ++histogram[seq.Next()];
  }
  int zero = histogram[0];
  int one = histogram[1];
  for (const auto& [value, count] : histogram) {
    if (value > 1) {
      EXPECT_GT(zero, count) << "value " << value;
      EXPECT_GT(one, count) << "value " << value;
    }
  }
}

TEST(ValueSequenceTest, IteratesThroughAllByteValues) {
  // §3: "a sequence that iterates through all small integers" — any byte
  // value a loop condition might need appears within one full cycle.
  ValueSequence seq;
  std::set<uint8_t> seen;
  for (int i = 0; i < 3 * 256; ++i) {
    seen.insert(static_cast<uint8_t>(seq.Next()));
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(ValueSequenceTest, SlashAppearsWithinBoundedReads) {
  // The Midnight Commander loop searches for '/' (47).
  ValueSequence seq;
  int reads = 0;
  while (static_cast<uint8_t>(seq.Next()) != '/') {
    ++reads;
    ASSERT_LT(reads, 3 * 256);
  }
  EXPECT_LE(reads, 3 * 46);
}

TEST(ValueSequenceTest, ZerosSequenceIsAllZeros) {
  ValueSequence seq(SequenceKind::kZeros);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(seq.Next(), 0u);
  }
}

TEST(ValueSequenceTest, RandomSequenceIsDeterministic) {
  ValueSequence a(SequenceKind::kRandom);
  ValueSequence b(SequenceKind::kRandom);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(ValueSequenceTest, ResetRestartsTheSequence) {
  ValueSequence seq;
  seq.Next();
  seq.Next();
  seq.Reset();
  EXPECT_EQ(seq.Next(), 0u);
  EXPECT_EQ(seq.Next(), 1u);
  EXPECT_EQ(seq.Next(), 2u);
}

TEST(ValueSequenceTest, CountsValuesProduced) {
  ValueSequence seq;
  for (int i = 0; i < 42; ++i) {
    seq.Next();
  }
  EXPECT_EQ(seq.values_produced(), 42u);
}

TEST(ValueSequenceTest, SmallValueCyclesWrapAround) {
  ValueSequence seq;
  // Consume a full cycle of the small-value slot (254 values: 2..255).
  uint64_t last_small = 0;
  for (int i = 0; i < 3 * 254; ++i) {
    uint64_t v = seq.Next();
    if (i % 3 == 2) {
      last_small = v;
    }
  }
  EXPECT_EQ(last_small, 255u);
  // The next small value wraps back to 2.
  seq.Next();  // 0
  seq.Next();  // 1
  EXPECT_EQ(seq.Next(), 2u);
}

}  // namespace
}  // namespace fob
