// The per-site policy resolution API (PolicySpec / SiteId / PolicyTable).
//
// Three layers of guarantees:
//
//   identity     SiteId is a stable, deterministic function of (unit name,
//                frame function, access kind), and the ids in the error log
//                are the ids the spec resolves against;
//   dispatch     a mixed spec applies exactly the site's policy to invalid
//                accesses at that site and the fallback everywhere else;
//   equivalence  a spec that resolves the same policy at every site — the
//                forced per-site dispatch path — is byte-for-byte identical
//                to the legacy single-policy Memory on both the scalar and
//                span access paths, for every policy. (Uniform specs take
//                the legacy fast path by construction, so this property
//                pins down the dispatch machinery itself.)
//
// Plus the semantics of the two sweep policies (kZeroManufacture,
// kThreshold).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/memory.h"
#include "src/runtime/process.h"
#include "src/softmem/fault.h"

namespace fob {
namespace {

// ---- SiteId -----------------------------------------------------------------

TEST(SiteIdTest, DeterministicAndDiscriminating) {
  SiteId a = MakeSiteId("buf", "parse", AccessKind::kWrite);
  EXPECT_EQ(a, MakeSiteId("buf", "parse", AccessKind::kWrite));
  EXPECT_NE(a, MakeSiteId("buf", "parse", AccessKind::kRead));
  EXPECT_NE(a, MakeSiteId("buf", "render", AccessKind::kWrite));
  EXPECT_NE(a, MakeSiteId("other", "parse", AccessKind::kWrite));
  EXPECT_NE(a, kInvalidSite);
}

TEST(SiteIdTest, FieldBoundaryIsUnambiguous) {
  // ("ab", "c") and ("a", "bc") must not collide just because the
  // concatenated bytes match.
  EXPECT_NE(MakeSiteId("ab", "c", AccessKind::kRead),
            MakeSiteId("a", "bc", AccessKind::kRead));
}

TEST(SiteIdTest, LoggedRecordsCarryTheResolvableSite) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr p = memory.Malloc(8, "logged_unit");
  {
    Memory::Frame frame(memory, "attacker");
    memory.WriteU8(p + 64, 1);
    (void)memory.ReadU8(p + 64);
  }
  ASSERT_EQ(memory.log().recent().size(), 2u);
  EXPECT_EQ(memory.log().recent()[0].site,
            MakeSiteId("logged_unit", "attacker", AccessKind::kWrite));
  EXPECT_EQ(memory.log().recent()[1].site,
            MakeSiteId("logged_unit", "attacker", AccessKind::kRead));
  // The aggregated site index carries the same ids with counts.
  ASSERT_EQ(memory.log().sites().size(), 2u);
  EXPECT_EQ(memory.log().sites().count(memory.log().recent()[0].site), 1u);
}

TEST(SiteIdTest, SiteForAccessMatchesWhatAnErrorWouldLog) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr p = memory.Malloc(8, "probed");
  Memory::Frame frame(memory, "prober");
  SiteId predicted = memory.SiteForAccess(p + 100, AccessKind::kWrite);
  memory.WriteU8(p + 100, 7);
  ASSERT_EQ(memory.log().recent().size(), 1u);
  EXPECT_EQ(memory.log().recent().back().site, predicted);
}

// ---- PolicySpec -------------------------------------------------------------

TEST(PolicySpecTest, UniformAndOverridesResolve) {
  PolicySpec spec(AccessPolicy::kBoundless);
  EXPECT_TRUE(spec.uniform());
  EXPECT_EQ(spec.fallback(), AccessPolicy::kBoundless);
  SiteId site = MakeSiteId("u", "f", AccessKind::kRead);
  EXPECT_EQ(spec.Resolve(site), AccessPolicy::kBoundless);
  spec.Set(site, AccessPolicy::kWrap);
  EXPECT_FALSE(spec.uniform());
  EXPECT_EQ(spec.Resolve(site), AccessPolicy::kWrap);
  EXPECT_EQ(spec.Resolve(site + 1), AccessPolicy::kBoundless);
}

TEST(PolicySpecTest, ImplicitFromAccessPolicy) {
  // The compatibility story: a bare AccessPolicy is the uniform spec.
  PolicySpec spec = AccessPolicy::kWrap;
  EXPECT_TRUE(spec.uniform());
  EXPECT_EQ(spec.fallback(), AccessPolicy::kWrap);
}

// ---- Per-site dispatch ------------------------------------------------------

TEST(SiteDispatchTest, OverriddenSiteGetsItsPolicyOthersGetFallback) {
  // Site "fragile @ handler (write)" terminates; everything else continues
  // failure-obliviously.
  PolicySpec spec(AccessPolicy::kFailureOblivious);
  spec.Set(MakeSiteId("fragile", "handler", AccessKind::kWrite), AccessPolicy::kBoundsCheck);
  Memory memory(spec);
  Ptr fragile = memory.Malloc(8, "fragile");
  Ptr robust = memory.Malloc(8, "robust");

  {
    Memory::Frame frame(memory, "handler");
    // Fallback site: invalid write discarded, execution continues.
    memory.WriteU8(robust + 32, 1);
    EXPECT_EQ(memory.log().total_errors(), 1u);
    // Read at the overridden unit: the override is write-kind only.
    (void)memory.ReadU8(fragile + 32);
    EXPECT_EQ(memory.log().total_errors(), 2u);
    // The overridden site terminates.
    RunResult result = RunAsProcess([&] { memory.WriteU8(fragile + 32, 1); });
    EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
  }
}

TEST(SiteDispatchTest, SameUnitDifferentFunctionIsADifferentSite) {
  PolicySpec spec(AccessPolicy::kFailureOblivious);
  spec.Set(MakeSiteId("buf", "vulnerable", AccessKind::kWrite), AccessPolicy::kBoundsCheck);
  Memory memory(spec);
  Ptr buf = memory.Malloc(8, "buf");
  {
    Memory::Frame frame(memory, "benign");
    memory.WriteU8(buf + 32, 1);  // falls back: continues
  }
  EXPECT_EQ(memory.log().total_errors(), 1u);
  {
    Memory::Frame frame(memory, "vulnerable");
    RunResult result = RunAsProcess([&] { memory.WriteU8(buf + 32, 1); });
    EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
  }
}

TEST(SiteDispatchTest, FreeFollowsTheSiteResolvedPolicy) {
  // An invalid free at a site resolved to BoundsCheck is fatal even though
  // the fallback continues.
  PolicySpec spec(AccessPolicy::kFailureOblivious);
  Memory probe(AccessPolicy::kFailureOblivious);  // to learn the site id
  Ptr probe_p = probe.Malloc(8, "victim");
  probe.Free(probe_p);
  SiteId site = probe.SiteForAccess(probe_p, AccessKind::kWrite);

  spec.Set(site, AccessPolicy::kBoundsCheck);
  Memory memory(spec);
  Ptr p = memory.Malloc(8, "victim");
  memory.Free(p);
  RunResult result = RunAsProcess([&] { memory.Free(p); });  // double free
  EXPECT_EQ(result.status, ExitStatus::kHeapCorruption);

  // Under the pure fallback the same double free is a logged no-op.
  Memory fallback_memory(AccessPolicy::kFailureOblivious);
  Ptr q = fallback_memory.Malloc(8, "victim");
  fallback_memory.Free(q);
  RunResult ok = RunAsProcess([&] { fallback_memory.Free(q); });
  EXPECT_TRUE(ok.ok());
}

// ---- Live respec (Rebind) ---------------------------------------------------

TEST(RebindTest, PreservesMemLogAggregatesAndTakesEffectOnNextAccess) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr buf = memory.Malloc(8, "buf");
  SiteId write_site;
  {
    Memory::Frame frame(memory, "serve");
    write_site = memory.SiteForAccess(buf + 32, AccessKind::kWrite);
    memory.WriteU8(buf + 32, 1);
    memory.WriteU8(buf + 40, 2);
  }
  ASSERT_EQ(memory.log().total_errors(), 2u);
  ASSERT_EQ(memory.log().sites().at(write_site).count, 2u);

  // Respec the live shard: the hot site now terminates.
  PolicySpec respec(AccessPolicy::kFailureOblivious);
  respec.Set(write_site, AccessPolicy::kBoundsCheck);
  memory.Rebind(respec);

  // The error history survived the respec untouched...
  EXPECT_EQ(memory.log().total_errors(), 2u);
  EXPECT_EQ(memory.log().sites().at(write_site).count, 2u);
  EXPECT_EQ(memory.spec().Resolve(write_site), AccessPolicy::kBoundsCheck);

  // ...and the new resolution governs the very next access.
  {
    Memory::Frame frame(memory, "serve");
    RunResult result = RunAsProcess([&] { memory.WriteU8(buf + 32, 3); });
    EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
  }
  // The heap survived too: the block is still readable in bounds.
  memory.WriteU8(buf, 7);
  EXPECT_EQ(memory.ReadU8(buf), 7u);
}

TEST(RebindTest, UniformToUniformSwitchesTheFastPathHandler) {
  // Both specs are uniform, so both take the single-dispatch fast path —
  // the rebind must swap which handler that path binds.
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr buf = memory.Malloc(4, "buf");
  memory.WriteU8(buf, 0xAB);
  memory.Rebind(PolicySpec(AccessPolicy::kWrap));
  {
    Memory::Frame frame(memory, "serve");
    // Wrap redirects the out-of-bounds read back into the unit: offset 4
    // wraps to 0, observing the in-bounds byte — FO would manufacture.
    EXPECT_EQ(memory.ReadU8(buf + 4), 0xAB);
  }
  EXPECT_EQ(memory.log().total_errors(), 1u);
}

TEST(RebindTest, HandlerBankStateSurvivesTheRespec) {
  // Threshold's error counter lives in the handler bank, which Rebind
  // keeps: errors continued *before* the respec still count against the
  // budget after it — the live shard is the same simulated process.
  Memory::Config config;
  config.policy = AccessPolicy::kThreshold;
  config.error_threshold = 3;
  Memory memory(config);
  Ptr buf = memory.Malloc(8, "buf");
  {
    Memory::Frame frame(memory, "serve");
    memory.WriteU8(buf + 32, 1);
    memory.WriteU8(buf + 32, 2);
  }
  EXPECT_EQ(memory.log().total_errors(), 2u);

  // Rebind to a mixed spec that still resolves this site to kThreshold.
  PolicySpec respec(AccessPolicy::kFailureOblivious);
  respec.Set(MakeSiteId("buf", "serve", AccessKind::kWrite), AccessPolicy::kThreshold);
  memory.Rebind(respec);
  {
    Memory::Frame frame(memory, "serve");
    memory.WriteU8(buf + 32, 3);  // third continued error: budget spent
    RunResult result = RunAsProcess([&] { memory.WriteU8(buf + 32, 4); });
    EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated)
        << "the pre-respec error count must still be charged";
  }
}

// ---- New handler semantics --------------------------------------------------

TEST(ZeroManufactureTest, InvalidReadsAreZeroAndConsumeNoSequence) {
  Memory memory(AccessPolicy::kZeroManufacture);
  Ptr p = memory.Malloc(4, "tiny");
  memory.WriteBytes(p, "abcd");
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(memory.ReadU8(p + 100 + i), 0u);
  }
  EXPECT_EQ(memory.sequence().values_produced(), 0u);
  // Writes are discarded like failure-oblivious.
  memory.WriteU8(p + 100, 0xff);
  EXPECT_EQ(memory.ReadU8(p + 100), 0u);
  EXPECT_EQ(memory.ReadBytesAsString(p, 4), "abcd");
}

TEST(ThresholdTest, ContinuesExactlyThroughTheBudgetThenTerminates) {
  Memory::Config config;
  config.policy = AccessPolicy::kThreshold;
  config.error_threshold = 5;
  Memory memory(config);
  Ptr p = memory.Malloc(4, "tiny");
  RunResult result = RunAsProcess([&] {
    for (int i = 0; i < 10; ++i) {
      memory.WriteU8(p + 100, 1);  // each is one invalid access
    }
  });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
  // 5 continued + the terminating 6th, all logged.
  EXPECT_EQ(memory.log().total_errors(), 6u);
}

TEST(ThresholdTest, BehavesFailureObliviouslyUnderTheBudget) {
  Memory::Config config;
  config.policy = AccessPolicy::kThreshold;
  config.error_threshold = 100;
  Memory memory(config);
  Ptr p = memory.Malloc(4, "tiny");
  // Manufactured reads follow the paper sequence, like failure-oblivious.
  EXPECT_EQ(memory.ReadU8(p + 100), 0);
  EXPECT_EQ(memory.ReadU8(p + 100), 1);
  EXPECT_EQ(memory.ReadU8(p + 100), 2);
  memory.WriteU8(p, 'x');
  EXPECT_EQ(memory.ReadU8(p), 'x');
}

// ---- Uniform-spec / legacy equivalence --------------------------------------

class Xorshift {
 public:
  explicit Xorshift(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 2685821657736338717ull;
  }
  int64_t Range(int64_t lo, int64_t hi) {  // [lo, hi)
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo));
  }

 private:
  uint64_t state_;
};

// legacy: the single-policy constructor (uniform fast path).
// forced:  the same policy via a spec with a redundant override, which
//          routes every access through the per-site dispatch path.
struct EquivalencePair {
  explicit EquivalencePair(AccessPolicy policy)
      : legacy(policy), forced(ForcedConfig(policy)) {}

  static Memory::Config ForcedConfig(AccessPolicy policy) {
    Memory::Config config;
    PolicySpec spec(policy);
    // An override that never loses information: some arbitrary site mapped
    // to the same policy. uniform() is now false, so dispatch engages.
    spec.Set(MakeSiteId("never-allocated", "nowhere", AccessKind::kRead), policy);
    config.policy = spec;
    return config;
  }

  Memory legacy;
  Memory forced;
};

template <typename Op>
void RunBothSides(EquivalencePair& pair, Op op) {
  std::optional<FaultKind> legacy_fault;
  std::optional<FaultKind> forced_fault;
  try {
    op(pair.legacy);
  } catch (const Fault& fault) {
    legacy_fault = fault.kind();
  }
  try {
    op(pair.forced);
  } catch (const Fault& fault) {
    forced_fault = fault.kind();
  }
  ASSERT_EQ(legacy_fault.has_value(), forced_fault.has_value());
  if (legacy_fault.has_value()) {
    EXPECT_EQ(*legacy_fault, *forced_fault);
  }
}

void ExpectIdenticalState(EquivalencePair& pair, const std::vector<Ptr>& units,
                          const std::vector<size_t>& sizes) {
  for (size_t u = 0; u < units.size(); ++u) {
    std::string a(sizes[u], '\0');
    std::string b(sizes[u], '\0');
    bool ra = pair.legacy.space().Read(units[u].addr, a.data(), sizes[u]);
    bool rb = pair.forced.space().Read(units[u].addr, b.data(), sizes[u]);
    ASSERT_EQ(ra, rb);
    EXPECT_EQ(a, b) << "unit " << u << " contents diverged";
  }
  EXPECT_EQ(pair.legacy.access_count(), pair.forced.access_count());
  EXPECT_EQ(pair.legacy.sequence().values_produced(), pair.forced.sequence().values_produced());
  ASSERT_EQ(pair.legacy.log().total_errors(), pair.forced.log().total_errors());
  const auto& ra = pair.legacy.log().recent();
  const auto& rb = pair.forced.log().recent();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].is_write, rb[i].is_write) << "record " << i;
    EXPECT_EQ(ra[i].addr, rb[i].addr) << "record " << i;
    EXPECT_EQ(ra[i].size, rb[i].size) << "record " << i;
    EXPECT_EQ(ra[i].unit, rb[i].unit) << "record " << i;
    EXPECT_EQ(ra[i].unit_name, rb[i].unit_name) << "record " << i;
    EXPECT_EQ(ra[i].status, rb[i].status) << "record " << i;
    EXPECT_EQ(ra[i].access_index, rb[i].access_index) << "record " << i;
    EXPECT_EQ(ra[i].site, rb[i].site) << "record " << i;
  }
  EXPECT_EQ(pair.legacy.boundless().stored_bytes(), pair.forced.boundless().stored_bytes());
}

class UniformSpecEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<AccessPolicy, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, UniformSpecEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kAllPolicies), ::testing::Values(11u, 404u)));

TEST_P(UniformSpecEquivalenceTest, DispatchPathMatchesLegacyOnScalarAndSpanPaths) {
  auto [policy, seed] = GetParam();
  EquivalencePair pair(policy);

  std::vector<size_t> sizes = {48, 96, 32};
  std::vector<Ptr> legacy_units;
  std::vector<Ptr> forced_units;
  for (size_t size : sizes) {
    legacy_units.push_back(pair.legacy.Malloc(size, "unit"));
    forced_units.push_back(pair.forced.Malloc(size, "unit"));
    ASSERT_EQ(legacy_units.back().addr, forced_units.back().addr);
  }
  Ptr legacy_dead = pair.legacy.Malloc(64, "dead");
  Ptr forced_dead = pair.forced.Malloc(64, "dead");
  RunBothSides(pair, [&](Memory& memory) {
    memory.Free(&memory == &pair.legacy ? legacy_dead : forced_dead);
  });

  Xorshift rng(seed);
  for (int step = 0; step < 220; ++step) {
    bool use_dead = rng.Next() % 8 == 0;
    size_t u = static_cast<size_t>(rng.Next() % sizes.size());
    size_t unit_size = use_dead ? 64 : sizes[u];
    int64_t offset = rng.Range(-24, static_cast<int64_t>(unit_size) + 24);
    size_t len = static_cast<size_t>(rng.Range(1, 48));
    bool is_write = rng.Next() % 2 == 0;
    // Mode 0: scalar n-byte access; mode 1: span; mode 2: byte loop.
    int mode = static_cast<int>(rng.Next() % 3);
    uint8_t fill = static_cast<uint8_t>(rng.Next());

    std::vector<uint8_t> legacy_out(len, 0xee);
    std::vector<uint8_t> forced_out(len, 0xee);
    RunBothSides(pair, [&](Memory& memory) {
      bool is_legacy = &memory == &pair.legacy;
      Ptr base = use_dead ? (is_legacy ? legacy_dead : forced_dead)
                          : (is_legacy ? legacy_units[u] : forced_units[u]);
      Ptr p = base + offset;
      if (is_write) {
        std::vector<uint8_t> data(len);
        for (size_t i = 0; i < len; ++i) {
          data[i] = static_cast<uint8_t>(fill + i);
        }
        switch (mode) {
          case 0:
            memory.Write(p, data.data(), len);
            break;
          case 1:
            memory.WriteSpan(p, data.data(), len);
            break;
          default:
            for (size_t i = 0; i < len; ++i) {
              memory.WriteU8(p + static_cast<int64_t>(i), data[i]);
            }
        }
      } else {
        uint8_t* out = (is_legacy ? legacy_out : forced_out).data();
        switch (mode) {
          case 0:
            memory.Read(p, out, len);
            break;
          case 1:
            memory.ReadSpan(p, out, len);
            break;
          default:
            for (size_t i = 0; i < len; ++i) {
              out[i] = memory.ReadU8(p + static_cast<int64_t>(i));
            }
        }
      }
    });
    if (!is_write) {
      EXPECT_EQ(legacy_out, forced_out) << "step " << step;
    }
    if (step % 40 == 0) {
      ExpectIdenticalState(pair, legacy_units, sizes);
      if (HasFatalFailure()) {
        return;
      }
    }
  }
  ExpectIdenticalState(pair, legacy_units, sizes);
}

}  // namespace
}  // namespace fob
