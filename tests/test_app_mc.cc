// mini-Midnight Commander under the five policies (§4.5).

#include "src/apps/mc.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

std::string CleanConfig() { return McApp::DefaultConfigText(/*with_blank_lines=*/false); }
std::string BlankyConfig() { return McApp::DefaultConfigText(/*with_blank_lines=*/true); }

TEST(McConfigTest, CleanConfigParsesEverywhere) {
  for (AccessPolicy policy : kAllPolicies) {
    McApp mc(policy, CleanConfig());
    EXPECT_EQ(mc.config().at("use_internal_edit"), "1") << PolicyName(policy);
    EXPECT_EQ(mc.config().size(), 4u) << PolicyName(policy);
  }
}

TEST(McConfigTest, BlankLineKillsBoundsCheckAtStartup) {
  // §4.5.4: "this error completely disabled the Bounds Check version until
  // we removed the blank lines."
  std::unique_ptr<McApp> mc;
  RunResult result = RunAsProcess(
      [&] { mc = std::make_unique<McApp>(AccessPolicy::kBoundsCheck, BlankyConfig()); });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST(McConfigTest, BlankLineHarmlessElsewhere) {
  for (AccessPolicy policy : {AccessPolicy::kStandard, AccessPolicy::kFailureOblivious,
                              AccessPolicy::kBoundless, AccessPolicy::kWrap}) {
    std::unique_ptr<McApp> mc;
    RunResult result = RunAsProcess([&] { mc = std::make_unique<McApp>(policy, BlankyConfig()); });
    EXPECT_TRUE(result.ok()) << PolicyName(policy);
    EXPECT_EQ(mc->config().size(), 4u) << PolicyName(policy);
  }
}

TEST(McConfigTest, FailureObliviousLogsTheBlankLineError) {
  McApp mc(AccessPolicy::kFailureOblivious, BlankyConfig());
  EXPECT_GE(mc.memory().log().read_errors(), 1u);
}

TEST(McBrowseTest, BenignArchiveListsEverywhere) {
  for (AccessPolicy policy : kAllPolicies) {
    McApp mc(policy, CleanConfig());
    auto listing = mc.BrowseTgz(MakeMcBenignTgz());
    ASSERT_TRUE(listing.ok) << PolicyName(policy);
    EXPECT_EQ(listing.rows.size(), 4u) << PolicyName(policy);
  }
}

TEST(McBrowseTest, CorruptArchiveRejectedGracefully) {
  McApp mc(AccessPolicy::kFailureOblivious, CleanConfig());
  auto listing = mc.BrowseTgz("not a gzip at all");
  EXPECT_FALSE(listing.ok);
  EXPECT_NE(listing.error.find("gzip"), std::string::npos);
}

TEST(McAttackTest, StandardCrashesOnMaliciousArchive) {
  McApp mc(AccessPolicy::kStandard, CleanConfig());
  RunResult result = RunAsProcess([&] { mc.BrowseTgz(MakeMcAttackTgz()); });
  EXPECT_TRUE(result.crashed());
}

TEST(McAttackTest, BoundsCheckTerminatesOnMaliciousArchive) {
  McApp mc(AccessPolicy::kBoundsCheck, CleanConfig());
  RunResult result = RunAsProcess([&] { mc.BrowseTgz(MakeMcAttackTgz()); });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST(McAttackTest, FailureObliviousShowsDanglingLinksAndContinues) {
  // §4.5.2: the lookup fails, MC "treats the symbolic link as a dangling
  // link and displays it as such", and subsequent commands work.
  McApp mc(AccessPolicy::kFailureOblivious, CleanConfig());
  mc.memory().set_access_budget(5'000'000);
  McApp::ArchiveListing listing;
  RunResult result = RunAsProcess([&] { listing = mc.BrowseTgz(MakeMcAttackTgz()); });
  ASSERT_TRUE(result.ok()) << result.detail;
  ASSERT_TRUE(listing.ok);
  EXPECT_EQ(listing.rows.size(), 6u);
  int dangling = 0;
  for (const std::string& row : listing.rows) {
    if (row.find("(dangling)") != std::string::npos) {
      ++dangling;
    }
  }
  EXPECT_GT(dangling, 0);
  EXPECT_GT(mc.memory().log().total_errors(), 0u);
  // Subsequent file management commands.
  MakeMcTree(mc.fs(), "/work/tree", 64 << 10);
  EXPECT_TRUE(mc.Copy("/work/tree", "/work/copy"));
  EXPECT_TRUE(mc.MkDir("/work/new"));
  EXPECT_TRUE(mc.Delete("/work/copy"));
}

TEST(McAttackTest, ZeroSequenceHangsTheSlashSearch) {
  // §3's motivating example: with a zeros-only manufactured sequence the
  // '/'-search loop never terminates.
  Memory::Config config;
  config.policy = AccessPolicy::kFailureOblivious;
  config.sequence = SequenceKind::kZeros;
  // McApp takes a policy, not a config; replicate via the low-level check
  // in test_memory_policies. Here, verify the app-level behaviour with the
  // paper sequence instead: it must NOT hang.
  McApp mc(AccessPolicy::kFailureOblivious, CleanConfig());
  mc.memory().set_access_budget(2'000'000);
  RunResult result = RunAsProcess([&] { mc.BrowseTgz(MakeMcAttackTgz()); });
  EXPECT_TRUE(result.ok());  // paper sequence rescues the loop
}

TEST(McFileOpsTest, CopyMoveMkdirDeleteAcrossPolicies) {
  for (AccessPolicy policy : {AccessPolicy::kStandard, AccessPolicy::kFailureOblivious}) {
    McApp mc(policy, CleanConfig());
    uint64_t bytes = MakeMcTree(mc.fs(), "/data/tree", 512 << 10);
    EXPECT_EQ(bytes, 512u << 10);
    EXPECT_TRUE(mc.Copy("/data/tree", "/data/copy")) << PolicyName(policy);
    EXPECT_EQ(mc.fs().TreeBytes("/data/copy"), bytes);
    EXPECT_TRUE(mc.Move("/data/copy", "/data/moved"));
    EXPECT_FALSE(mc.fs().Exists("/data/copy"));
    EXPECT_TRUE(mc.MkDir("/data/fresh"));
    EXPECT_TRUE(mc.Delete("/data/moved"));
    EXPECT_FALSE(mc.Delete("/data/moved"));  // second delete fails cleanly
  }
}

TEST(McStabilityTest, RepeatedAttackBrowsesBetweenWork) {
  // §4.5.4: open the problematic archive periodically, keep working.
  McApp mc(AccessPolicy::kFailureOblivious, BlankyConfig());
  mc.memory().set_access_budget(50'000'000);
  MakeMcTree(mc.fs(), "/home/files", 128 << 10);
  for (int round = 0; round < 10; ++round) {
    auto listing = mc.BrowseTgz(MakeMcAttackTgz());
    EXPECT_TRUE(listing.ok) << "round " << round;
    std::string dst = "/home/copy" + std::to_string(round);
    EXPECT_TRUE(mc.Copy("/home/files", dst)) << "round " << round;
    EXPECT_TRUE(mc.Delete(dst));
  }
}

}  // namespace
}  // namespace fob
