#include "src/libc/cstring.h"

#include <gtest/gtest.h>

#include <string>

#include "src/runtime/memory.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

class LibcTest : public ::testing::Test {
 protected:
  LibcTest() : m_(AccessPolicy::kFailureOblivious) {}
  Memory m_;
};

TEST_F(LibcTest, StrLen) {
  EXPECT_EQ(StrLen(m_, m_.NewCString("")), 0u);
  EXPECT_EQ(StrLen(m_, m_.NewCString("a")), 1u);
  EXPECT_EQ(StrLen(m_, m_.NewCString("hello")), 5u);
}

TEST_F(LibcTest, StrCpyCopiesIncludingNul) {
  Ptr src = m_.NewCString("copy me");
  Ptr dst = m_.Malloc(32, "dst");
  StrCpy(m_, dst, src);
  EXPECT_EQ(m_.ReadCString(dst), "copy me");
}

TEST_F(LibcTest, StrNCpyPadsWithNuls) {
  Ptr src = m_.NewCString("ab");
  Ptr dst = m_.Malloc(8, "dst");
  MemSet(m_, dst, 0xff, 8);
  StrNCpy(m_, dst, src, 6);
  EXPECT_EQ(m_.ReadU8(dst + 0), 'a');
  EXPECT_EQ(m_.ReadU8(dst + 1), 'b');
  for (int i = 2; i < 6; ++i) {
    EXPECT_EQ(m_.ReadU8(dst + i), 0) << i;
  }
  EXPECT_EQ(m_.ReadU8(dst + 6), 0xff);  // untouched
}

TEST_F(LibcTest, StrNCpyTruncatesWithoutNul) {
  Ptr src = m_.NewCString("abcdef");
  Ptr dst = m_.Malloc(8, "dst");
  StrNCpy(m_, dst, src, 3);
  EXPECT_EQ(m_.ReadBytesAsString(dst, 3), "abc");
}

TEST_F(LibcTest, StrCatAppends) {
  Ptr dst = m_.Malloc(32, "dst");
  StrCpy(m_, dst, m_.NewCString("foo"));
  StrCat(m_, dst, m_.NewCString("bar"));
  EXPECT_EQ(m_.ReadCString(dst), "foobar");
}

TEST_F(LibcTest, StrCatRepeatedAccumulates) {
  // The Midnight Commander pattern: repeated strcat into one buffer.
  Ptr dst = m_.Malloc(64, "dst");
  m_.WriteU8(dst, 0);
  for (int i = 0; i < 4; ++i) {
    StrCat(m_, dst, m_.NewCString("xy"));
  }
  EXPECT_EQ(m_.ReadCString(dst), "xyxyxyxy");
}

TEST_F(LibcTest, StrNCatStopsAtN) {
  Ptr dst = m_.Malloc(32, "dst");
  StrCpy(m_, dst, m_.NewCString("a"));
  StrNCat(m_, dst, m_.NewCString("bcdef"), 3);
  EXPECT_EQ(m_.ReadCString(dst), "abcd");
}

TEST_F(LibcTest, StrCmpOrders) {
  EXPECT_EQ(StrCmp(m_, m_.NewCString("abc"), m_.NewCString("abc")), 0);
  EXPECT_LT(StrCmp(m_, m_.NewCString("abb"), m_.NewCString("abc")), 0);
  EXPECT_GT(StrCmp(m_, m_.NewCString("abd"), m_.NewCString("abc")), 0);
  EXPECT_LT(StrCmp(m_, m_.NewCString("ab"), m_.NewCString("abc")), 0);
}

TEST_F(LibcTest, StrNCmpStopsAtN) {
  EXPECT_EQ(StrNCmp(m_, m_.NewCString("abcX"), m_.NewCString("abcY"), 3), 0);
  EXPECT_NE(StrNCmp(m_, m_.NewCString("abcX"), m_.NewCString("abcY"), 4), 0);
}

TEST_F(LibcTest, MemCmp) {
  Ptr a = m_.NewBytes(std::string("\x01\x02\x03", 3), "a");
  Ptr b = m_.NewBytes(std::string("\x01\x02\x04", 3), "b");
  EXPECT_EQ(MemCmp(m_, a, b, 2), 0);
  EXPECT_LT(MemCmp(m_, a, b, 3), 0);
}

TEST_F(LibcTest, StrChrFindsFirst) {
  Ptr s = m_.NewCString("a/b/c");
  Ptr found = StrChr(m_, s, '/');
  EXPECT_EQ(found - s, 1);
  EXPECT_TRUE(StrChr(m_, s, 'z').IsNull());
  // Searching for NUL finds the terminator.
  Ptr nul = StrChr(m_, s, '\0');
  EXPECT_EQ(nul - s, 5);
}

TEST_F(LibcTest, StrRChrFindsLast) {
  Ptr s = m_.NewCString("a/b/c");
  Ptr found = StrRChr(m_, s, '/');
  EXPECT_EQ(found - s, 3);
  EXPECT_TRUE(StrRChr(m_, s, 'q').IsNull());
}

TEST_F(LibcTest, MemCpyAndMemMove) {
  Ptr src = m_.NewBytes("0123456789", "src");
  Ptr dst = m_.Malloc(10, "dst");
  MemCpy(m_, dst, src, 10);
  EXPECT_EQ(m_.ReadBytesAsString(dst, 10), "0123456789");
  // Overlapping shift with MemMove.
  MemMove(m_, dst + 2, dst, 8);
  EXPECT_EQ(m_.ReadBytesAsString(dst, 10), "0101234567");
}

TEST_F(LibcTest, MemSetFills) {
  Ptr p = m_.Malloc(16, "p");
  MemSet(m_, p, 'x', 16);
  EXPECT_EQ(m_.ReadBytesAsString(p, 16), std::string(16, 'x'));
}

TEST_F(LibcTest, StrDupMakesIndependentCopy) {
  Ptr s = m_.NewCString("original");
  Ptr d = StrDup(m_, s);
  m_.WriteU8(s, 'O');
  EXPECT_EQ(m_.ReadCString(d), "original");
}

TEST_F(LibcTest, LargeMemCpyCrossesPages) {
  std::string big(20000, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  Ptr src = m_.NewBytes(big, "big src");
  Ptr dst = m_.Malloc(big.size(), "big dst");
  MemCpy(m_, dst, src, big.size());
  EXPECT_EQ(m_.ReadBytesAsString(dst, big.size()), big);
}

// --- Overflow behaviour per policy: the heart of the paper ---

TEST(LibcPolicyTest, StrCpyOverflowDiscardedUnderFailureOblivious) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr small = m.Malloc(4, "small");
  Ptr neighbor = m.NewCString("safe", "neighbor");
  Ptr longstr = m.NewCString("0123456789");
  RunResult result = RunAsProcess([&] { StrCpy(m, small, longstr); });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(m.ReadBytesAsString(small, 4), "0123");  // in-bounds prefix kept
  EXPECT_EQ(m.ReadCString(neighbor), "safe");        // neighbor untouched
  EXPECT_GT(m.log().write_errors(), 0u);
}

TEST(LibcPolicyTest, StrCpyOverflowTerminatesUnderBoundsCheck) {
  Memory m(AccessPolicy::kBoundsCheck);
  Ptr small = m.Malloc(4, "small");
  Ptr longstr = m.NewCString("0123456789");
  RunResult result = RunAsProcess([&] { StrCpy(m, small, longstr); });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST(LibcPolicyTest, StrCpyOverflowCorruptsUnderStandard) {
  Memory m(AccessPolicy::kStandard);
  Ptr small = m.Malloc(4, "small");
  Ptr longstr = m.NewCString(std::string(64, 'A'));
  RunResult result = RunAsProcess([&] {
    StrCpy(m, small, longstr);
    m.Free(small);  // allocator notices the stomped footer
  });
  EXPECT_EQ(result.status, ExitStatus::kHeapCorruption);
}

TEST(LibcPolicyTest, StrLenOnUnterminatedBufferTerminatesViaManufacturedNul) {
  Memory m(AccessPolicy::kFailureOblivious);
  m.set_access_budget(100000);
  Ptr p = m.Malloc(4, "unterminated");
  MemSet(m, p, 'x', 4);
  RunResult result = RunAsProcess([&] {
    size_t n = StrLen(m, p);
    EXPECT_GE(n, 4u);
    EXPECT_LE(n, 7u);  // manufactured 0 within three values
  });
  EXPECT_TRUE(result.ok());
}

TEST(LibcPolicyTest, BoundlessStrCpyRoundTripsWholeString) {
  // §5.1: with boundless memory blocks the program's logic sees the data it
  // wrote, even past the end — size miscalculations stop mattering.
  Memory m(AccessPolicy::kBoundless);
  Ptr small = m.Malloc(4, "small");
  Ptr longstr = m.NewCString("0123456789");
  StrCpy(m, small, longstr);
  EXPECT_EQ(m.ReadCString(small), "0123456789");
}

}  // namespace
}  // namespace fob
