// The page-granular fast path end to end: hits resolve without the interval
// search, misses fall through byte-identically, and — the hazard this layer
// must never introduce — a page-map hit can never resolve an access through
// a retired unit, even when a fresh allocation has reused the same address.

#include "src/softmem/page_map.h"

#include <gtest/gtest.h>

#include <string>

#include "src/runtime/memory.h"

namespace fob {
namespace {

// A page-aligned pointer inside a larger allocation, so the pages under it
// are sole-owned by the allocation (mirrors bench_check_cost's hot window).
Ptr PageAlignedWindow(Memory& memory, size_t bytes, const std::string& name) {
  Ptr raw = memory.Malloc(bytes + kPageSize, name);
  return Ptr(PageBaseOf(raw.addr + kPageSize - 1), raw.unit);
}

TEST(PageMapFastPathTest, SoleOwnerWindowHitsWithoutErrors) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr window = PageAlignedWindow(memory, kPageSize, "hot");
  uint64_t hits_before = memory.translation_hits();
  uint64_t misses_before = memory.translation_misses();
  for (int i = 0; i < 256; ++i) {
    memory.WriteU8(window + i, static_cast<uint8_t>(i));
  }
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(memory.ReadU8(window + i), static_cast<uint8_t>(i));
  }
  EXPECT_EQ(memory.translation_hits() - hits_before, 512u);
  EXPECT_EQ(memory.translation_misses(), misses_before);
  EXPECT_EQ(memory.log().total_errors(), 0u);
}

TEST(PageMapFastPathTest, HitsAreEquivalentUnderEveryPolicy) {
  for (AccessPolicy policy : kAllPolicies) {
    Memory memory(policy);
    Ptr window = PageAlignedWindow(memory, kPageSize, "hot");
    memory.WriteU32(window + 8, 0xfeedface);
    EXPECT_EQ(memory.ReadU32(window + 8), 0xfeedfaceu) << PolicyName(policy);
    EXPECT_GT(memory.translation_hits(), 0u) << PolicyName(policy);
    EXPECT_EQ(memory.log().total_errors(), 0u) << PolicyName(policy);
  }
}

TEST(PageMapFastPathTest, MixedPageFallsToSlowPathWithSameSemantics) {
  Memory memory(AccessPolicy::kFailureOblivious);
  // Small packed blocks share pages, so the page map classifies them mixed;
  // accesses must still round trip (via the interval search), just as
  // misses rather than hits.
  Ptr a = memory.Malloc(48, "a");
  Ptr b = memory.Malloc(48, "b");
  uint64_t hits_before = memory.translation_hits();
  memory.WriteU8(a, 0x11);
  memory.WriteU8(b, 0x22);
  EXPECT_EQ(memory.ReadU8(a), 0x11);
  EXPECT_EQ(memory.ReadU8(b), 0x22);
  EXPECT_EQ(memory.translation_hits(), hits_before);
  EXPECT_GE(memory.translation_misses(), 4u);
  EXPECT_EQ(memory.log().total_errors(), 0u);
}

TEST(PageMapFastPathTest, OutOfBoundsNeverTakesTheFastPath) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr window = PageAlignedWindow(memory, kPageSize, "hot");
  uint64_t hits_before = memory.translation_hits();
  // One past the allocation's end: same owner-page resolution would find
  // the unit, but the extent check must reject it into the slow path, which
  // logs the error exactly as before.
  Ptr raw = Ptr(window.addr, window.unit);
  const DataUnit* unit = memory.objects().Lookup(raw.unit);
  ASSERT_NE(unit, nullptr);
  Ptr past = Ptr(unit->base + unit->size, unit->id);
  memory.WriteU8(past, 0x99);
  EXPECT_EQ(memory.translation_hits(), hits_before);
  EXPECT_EQ(memory.log().total_errors(), 1u);
  EXPECT_EQ(memory.log().recent().back().status, PointerStatus::kOobAbove);
}

// The stale-bounds hazard (the regression this PR's tentpole must not
// introduce): retire a page's sole owner, let a fresh allocation reuse the
// address, then access through the *stale* pointer. The page-map entry now
// names the new unit, so the fast path must miss; the slow path must
// classify the access dangling and the error record must still name the
// dead unit the pointer was derived from.
TEST(PageMapFastPathTest, StaleBoundsAfterRetireAtSameAddress) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr old_block = memory.Malloc(2 * kPageSize, "old");
  Ptr old_window(PageBaseOf(old_block.addr + kPageSize - 1), old_block.unit);
  memory.WriteU8(old_window, 0xaa);
  EXPECT_GT(memory.translation_hits(), 0u);
  memory.Free(old_block);
  // The freed range coalesces with the frontier, so a same-or-larger
  // allocation reuses the same payload address under a fresh unit id.
  Ptr fresh = memory.Malloc(3 * kPageSize, "fresh");
  ASSERT_EQ(fresh.addr, old_block.addr);
  ASSERT_NE(fresh.unit, old_block.unit);
  uint64_t hits_before = memory.translation_hits();
  uint64_t errors_before = memory.log().total_errors();
  // Access through the stale pointer: must NOT resolve through the page map
  // (the page's owner is the fresh unit, not the stale pointer's referent).
  EXPECT_EQ(memory.Classify(old_window), PointerStatus::kDangling);
  memory.WriteU8(old_window, 0xbb);
  EXPECT_EQ(memory.translation_hits(), hits_before);
  EXPECT_EQ(memory.log().total_errors(), errors_before + 1);
  const MemErrorRecord& record = memory.log().recent().back();
  EXPECT_EQ(record.status, PointerStatus::kDangling);
  EXPECT_EQ(record.unit_name, "old");  // attribution survives retirement
  // The discarded write must not have landed in the fresh allocation
  // (Malloc zero-fills, so any non-zero byte would be the leak).
  EXPECT_EQ(memory.ReadU8(Ptr(old_window.addr, fresh.unit)), 0);
}

// Realloc moves the block: the old unit retires, a new one registers. The
// fast path must follow the move — hits through the new pointer, dangling
// through the old one.
TEST(PageMapFastPathTest, ReallocRetiresOldOwnership) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr p = memory.Malloc(2 * kPageSize, "grow");
  Ptr window(PageBaseOf(p.addr + kPageSize - 1), p.unit);
  memory.WriteU8(window, 0x42);
  EXPECT_GT(memory.translation_hits(), 0u);
  Ptr grown = memory.Realloc(p, 4 * kPageSize);
  ASSERT_FALSE(grown.IsNull());
  ASSERT_NE(grown.unit, p.unit);
  // Contents moved; aligned reads through the new unit hit the fast path.
  Ptr moved(grown.addr + (window.addr - p.addr), grown.unit);
  uint64_t hits_before = memory.translation_hits();
  EXPECT_EQ(memory.ReadU8(moved), 0x42);
  EXPECT_GT(memory.translation_hits(), hits_before);
  // The old pointer dangles and cannot ride the fast path into the map.
  hits_before = memory.translation_hits();
  memory.WriteU8(window, 0x99);
  EXPECT_EQ(memory.translation_hits(), hits_before);
  EXPECT_EQ(memory.log().recent().back().status, PointerStatus::kDangling);
}

// Counters fold into merged logs through MemLog::AddTranslationStats.
TEST(PageMapFastPathTest, CountersSurfaceInMemLog) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr window = PageAlignedWindow(memory, kPageSize, "hot");
  memory.WriteU8(window, 1);
  MemLog merged;
  merged.Merge(memory.log());
  merged.AddTranslationStats(memory.translation_hits(), memory.translation_misses());
  EXPECT_EQ(merged.translation_hits(), memory.translation_hits());
  EXPECT_NE(merged.Summary().find("page-map fast path"), std::string::npos);
}

}  // namespace
}  // namespace fob
