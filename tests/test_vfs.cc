#include "src/vfs/vfs.h"

#include <gtest/gtest.h>

#include <string>

namespace fob {
namespace {

TEST(VfsTest, RootExists) {
  Vfs fs;
  EXPECT_TRUE(fs.Exists("/"));
  EXPECT_TRUE(fs.IsDirectory("/"));
  EXPECT_TRUE(fs.List("/")->empty());
}

TEST(VfsTest, MkDirAndList) {
  Vfs fs;
  EXPECT_TRUE(fs.MkDir("/a"));
  EXPECT_TRUE(fs.MkDir("/a/b"));
  EXPECT_FALSE(fs.MkDir("/a"));        // already exists
  EXPECT_FALSE(fs.MkDir("/x/y"));      // parent missing
  EXPECT_TRUE(fs.MkDir("/x/y", true)); // mkdir -p
  auto names = fs.List("/");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "x"}));
}

TEST(VfsTest, WriteAndReadFile) {
  Vfs fs;
  EXPECT_TRUE(fs.WriteFile("/f.txt", "hello"));
  EXPECT_EQ(fs.ReadFile("/f.txt"), "hello");
  EXPECT_EQ(fs.FileSize("/f.txt"), 5u);
  EXPECT_TRUE(fs.WriteFile("/f.txt", "rewritten"));
  EXPECT_EQ(fs.ReadFile("/f.txt"), "rewritten");
}

TEST(VfsTest, WriteFileCannotReplaceDirectory) {
  Vfs fs;
  fs.MkDir("/d");
  EXPECT_FALSE(fs.WriteFile("/d", "nope"));
}

TEST(VfsTest, SymlinkStoresTarget) {
  Vfs fs;
  EXPECT_TRUE(fs.SymLink("/link", "/target/elsewhere"));
  EXPECT_EQ(fs.ReadLink("/link"), "/target/elsewhere");
  EXPECT_FALSE(fs.ReadFile("/link").has_value());
}

TEST(VfsTest, PathValidation) {
  Vfs fs;
  EXPECT_FALSE(fs.MkDir("relative"));
  EXPECT_FALSE(fs.MkDir(""));
  EXPECT_FALSE(fs.MkDir("/a/../b", true));
  EXPECT_FALSE(fs.MkDir("/a/./b", true));
  EXPECT_TRUE(fs.MkDir("/trailing/", true));  // trailing slash tolerated
  EXPECT_TRUE(fs.Exists("/trailing"));
}

TEST(VfsTest, RemoveIsRecursive) {
  Vfs fs;
  fs.MkDir("/tree", true);
  fs.WriteFile("/tree/a", "1", true);
  fs.WriteFile("/tree/sub/b", "2", true);
  EXPECT_TRUE(fs.Remove("/tree"));
  EXPECT_FALSE(fs.Exists("/tree"));
  EXPECT_FALSE(fs.Remove("/tree"));  // already gone
}

TEST(VfsTest, CopyTree) {
  Vfs fs;
  fs.WriteFile("/src/d/a.txt", "A", true);
  fs.WriteFile("/src/b.txt", "B", true);
  EXPECT_TRUE(fs.Copy("/src", "/dst"));
  EXPECT_EQ(fs.ReadFile("/dst/d/a.txt"), "A");
  EXPECT_EQ(fs.ReadFile("/dst/b.txt"), "B");
  // Deep copy: mutating the copy leaves the source alone.
  fs.WriteFile("/dst/b.txt", "B2");
  EXPECT_EQ(fs.ReadFile("/src/b.txt"), "B");
}

TEST(VfsTest, CopyRejectsBadTargets) {
  Vfs fs;
  fs.WriteFile("/a", "x");
  EXPECT_FALSE(fs.Copy("/missing", "/b"));
  EXPECT_FALSE(fs.Copy("/a", "/nodir/b"));
  fs.WriteFile("/b", "y");
  EXPECT_FALSE(fs.Copy("/a", "/b"));  // destination exists
}

TEST(VfsTest, MoveRemovesSource) {
  Vfs fs;
  fs.WriteFile("/src/f", "data", true);
  EXPECT_TRUE(fs.Move("/src", "/dst"));
  EXPECT_FALSE(fs.Exists("/src"));
  EXPECT_EQ(fs.ReadFile("/dst/f"), "data");
}

TEST(VfsTest, TreeAccounting) {
  Vfs fs;
  fs.WriteFile("/t/a", std::string(100, 'x'), true);
  fs.WriteFile("/t/d/b", std::string(50, 'y'), true);
  EXPECT_EQ(fs.TreeBytes("/t"), 150u);
  EXPECT_EQ(fs.TreeCount("/t"), 4u);  // t, a, d, b
  EXPECT_EQ(fs.TreeBytes("/missing"), 0u);
}

TEST(VfsTest, DeepCopyConstructor) {
  Vfs fs;
  fs.WriteFile("/data", "original");
  Vfs clone(fs);
  clone.WriteFile("/data", "changed");
  EXPECT_EQ(fs.ReadFile("/data"), "original");
  EXPECT_EQ(clone.ReadFile("/data"), "changed");
}

TEST(VfsTest, ListMissingDirectory) {
  Vfs fs;
  EXPECT_FALSE(fs.List("/nope").has_value());
  fs.WriteFile("/file", "x");
  EXPECT_FALSE(fs.List("/file").has_value());  // not a directory
}

}  // namespace
}  // namespace fob
