#include "src/regex/regex.h"

#include <gtest/gtest.h>

#include <string>

#include "src/regex/rewrite.h"

namespace fob {
namespace {

MatchResult Search(const std::string& pattern, const std::string& subject) {
  auto regex = Regex::Compile(pattern);
  EXPECT_TRUE(regex.has_value()) << pattern;
  return regex->Search(subject);
}

TEST(RegexTest, LiteralMatch) {
  EXPECT_TRUE(Search("abc", "abc").matched);
  EXPECT_TRUE(Search("abc", "xxabcxx").matched);
  EXPECT_FALSE(Search("abc", "abd").matched);
}

TEST(RegexTest, DotMatchesAnySingleByte) {
  EXPECT_TRUE(Search("a.c", "abc").matched);
  EXPECT_TRUE(Search("a.c", "a/c").matched);
  EXPECT_FALSE(Search("a.c", "ac").matched);
}

TEST(RegexTest, StarQuantifier) {
  EXPECT_TRUE(Search("ab*c", "ac").matched);
  EXPECT_TRUE(Search("ab*c", "abbbbc").matched);
  EXPECT_FALSE(Search("ab*c", "adc").matched);
}

TEST(RegexTest, PlusQuantifier) {
  EXPECT_FALSE(Search("ab+c", "ac").matched);
  EXPECT_TRUE(Search("ab+c", "abc").matched);
  EXPECT_TRUE(Search("ab+c", "abbc").matched);
}

TEST(RegexTest, QuestionQuantifier) {
  EXPECT_TRUE(Search("colou?r", "color").matched);
  EXPECT_TRUE(Search("colou?r", "colour").matched);
  EXPECT_FALSE(Search("colou?r", "colouur").matched);
}

TEST(RegexTest, BraceQuantifiers) {
  EXPECT_TRUE(Search("a{3}", "aaa").matched);
  EXPECT_FALSE(Search("^a{3}$", "aa").matched);
  EXPECT_TRUE(Search("^a{2,}$", "aaaa").matched);
  EXPECT_FALSE(Search("^a{2,}$", "a").matched);
  EXPECT_TRUE(Search("^a{1,3}$", "aa").matched);
  EXPECT_FALSE(Search("^a{1,3}$", "aaaa").matched);
}

TEST(RegexTest, BraceNotQuantifierIsLiteral) {
  EXPECT_TRUE(Search("a\\{x", "a{x").matched);
  EXPECT_TRUE(Search("^a{,3}$", "a{,3}").matched);  // not a valid brace => literal
}

TEST(RegexTest, CharacterClasses) {
  EXPECT_TRUE(Search("[abc]+", "cab").matched);
  EXPECT_FALSE(Search("^[abc]+$", "cabx").matched);
  EXPECT_TRUE(Search("[a-z]+", "hello").matched);
  EXPECT_TRUE(Search("[^0-9]+", "abc").matched);
  EXPECT_FALSE(Search("^[^0-9]+$", "ab3c").matched);
}

TEST(RegexTest, ClassWithEscapesAndLiteralDash) {
  EXPECT_TRUE(Search("^[\\d-]+$", "12-34").matched);
  EXPECT_TRUE(Search("^[a-]+$", "a-a").matched);  // trailing dash literal
}

TEST(RegexTest, Shorthands) {
  EXPECT_TRUE(Search("^\\d+$", "12345").matched);
  EXPECT_FALSE(Search("^\\d+$", "12a45").matched);
  EXPECT_TRUE(Search("^\\w+$", "na_me9").matched);
  EXPECT_TRUE(Search("^\\s$", " ").matched);
  EXPECT_TRUE(Search("^\\D$", "x").matched);
  EXPECT_FALSE(Search("^\\D$", "5").matched);
}

TEST(RegexTest, Anchors) {
  EXPECT_TRUE(Search("^abc", "abcdef").matched);
  EXPECT_FALSE(Search("^bcd", "abcdef").matched);
  EXPECT_TRUE(Search("def$", "abcdef").matched);
  EXPECT_FALSE(Search("abc$", "abcdef").matched);
  EXPECT_TRUE(Search("^abc$", "abc").matched);
}

TEST(RegexTest, Alternation) {
  EXPECT_TRUE(Search("^(cat|dog)$", "cat").matched);
  EXPECT_TRUE(Search("^(cat|dog)$", "dog").matched);
  EXPECT_FALSE(Search("^(cat|dog)$", "cow").matched);
  EXPECT_TRUE(Search("^a(b|c)*d$", "abcbcd").matched);
}

TEST(RegexTest, CapturesBasic) {
  MatchResult m = Search("(\\w+)@(\\w+)", "mail me: user@host now");
  ASSERT_TRUE(m.matched);
  ASSERT_EQ(m.GroupCount(), 3);
  EXPECT_EQ(m.Group("mail me: user@host now", 0), "user@host");
  EXPECT_EQ(m.Group("mail me: user@host now", 1), "user");
  EXPECT_EQ(m.Group("mail me: user@host now", 2), "host");
}

TEST(RegexTest, CapturesNested) {
  MatchResult m = Search("^(a(b)c)$", "abc");
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.Group("abc", 1), "abc");
  EXPECT_EQ(m.Group("abc", 2), "b");
}

TEST(RegexTest, UnmatchedGroupReportsMinusOne) {
  MatchResult m = Search("^(a)|(b)$", "a");
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.groups[1].first, 0);
  EXPECT_EQ(m.groups[2].first, -1);
}

TEST(RegexTest, GreedyWithBacktracking) {
  MatchResult m = Search("^(a*)(a)$", "aaaa");
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.Group("aaaa", 1), "aaa");
  EXPECT_EQ(m.Group("aaaa", 2), "a");
}

TEST(RegexTest, LeftmostSearchWins) {
  MatchResult m = Search("o+", "foo boo");
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.groups[0].first, 1);
  EXPECT_EQ(m.groups[0].second, 3);
}

TEST(RegexTest, MatchIsAnchoredAtStart) {
  auto regex = Regex::Compile("abc");
  ASSERT_TRUE(regex.has_value());
  EXPECT_TRUE(regex->Match("abcdef").matched);
  EXPECT_FALSE(regex->Match("xabc").matched);
}

TEST(RegexTest, ManyCaptureGroups) {
  // The Apache attack shape: more than ten captures.
  std::string pattern = "^";
  std::string subject;
  for (int i = 0; i < 12; ++i) {
    pattern += "(\\w+)/";
    subject += "seg" + std::to_string(i) + "/";
  }
  pattern += "$";
  auto regex = Regex::Compile(pattern);
  ASSERT_TRUE(regex.has_value());
  EXPECT_EQ(regex->capture_count(), 12);
  MatchResult m = regex->Search(subject);
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.Group(subject, 12), "seg11");
}

TEST(RegexTest, CompileErrors) {
  std::string error;
  EXPECT_FALSE(Regex::Compile("(abc", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Regex::Compile("abc)", nullptr).has_value());
  EXPECT_FALSE(Regex::Compile("*a", nullptr).has_value());
  EXPECT_FALSE(Regex::Compile("[abc", nullptr).has_value());
  EXPECT_FALSE(Regex::Compile("a\\", nullptr).has_value());
  EXPECT_FALSE(Regex::Compile("[z-a]", nullptr).has_value());
  EXPECT_FALSE(Regex::Compile("^*", nullptr).has_value());
}

TEST(RegexTest, EscapedMetacharacters) {
  EXPECT_TRUE(Search("^a\\.c$", "a.c").matched);
  EXPECT_FALSE(Search("^a\\.c$", "abc").matched);
  EXPECT_TRUE(Search("^\\(x\\)$", "(x)").matched);
  EXPECT_TRUE(Search("^a\\|b$", "a|b").matched);
  EXPECT_TRUE(Search("\\n", "line1\nline2").matched);
}

TEST(RegexTest, EmptyPatternMatchesEmpty) {
  auto regex = Regex::Compile("");
  ASSERT_TRUE(regex.has_value());
  MatchResult m = regex->Search("anything");
  EXPECT_TRUE(m.matched);
  EXPECT_EQ(m.groups[0].second - m.groups[0].first, 0);
}

TEST(RegexTest, StarOfGroupWithCapture) {
  MatchResult m = Search("^(ab)*$", "ababab");
  ASSERT_TRUE(m.matched);
  // Last iteration's capture wins.
  EXPECT_EQ(m.groups[1].first, 4);
  EXPECT_EQ(m.groups[1].second, 6);
}

// ---- rewrite rules ---------------------------------------------------------

TEST(RewriteTest, BasicSubstitution) {
  auto rule = RewriteRule::Make("^/old/(\\w+)$", "/new/$1");
  ASSERT_TRUE(rule.has_value());
  std::vector<RewriteRule> rules;
  rules.push_back(std::move(*rule));
  auto result = ApplyRules(rules, "/old/page");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, "/new/page");
}

TEST(RewriteTest, Dollar0IsWholeMatch) {
  auto rule = RewriteRule::Make("^/x/(a)(b)$", "[$0][$1][$2]");
  std::vector<RewriteRule> rules;
  rules.push_back(std::move(*rule));
  EXPECT_EQ(*ApplyRules(rules, "/x/ab"), "[/x/ab][a][b]");
}

TEST(RewriteTest, NoMatchReturnsNullopt) {
  auto rule = RewriteRule::Make("^/only$", "/other");
  std::vector<RewriteRule> rules;
  rules.push_back(std::move(*rule));
  EXPECT_FALSE(ApplyRules(rules, "/nope").has_value());
}

TEST(RewriteTest, FirstMatchingRuleWins) {
  std::vector<RewriteRule> rules;
  rules.push_back(*RewriteRule::Make("^/a$", "/first"));
  rules.push_back(*RewriteRule::Make("^/a$", "/second"));
  EXPECT_EQ(*ApplyRules(rules, "/a"), "/first");
}

TEST(RewriteTest, DollarEscapeAndUnmatchedGroup) {
  auto rule = RewriteRule::Make("^/p/(x)?(y)$", "$$-$1-$2-$9");
  std::vector<RewriteRule> rules;
  rules.push_back(std::move(*rule));
  EXPECT_EQ(*ApplyRules(rules, "/p/y"), "$--y-");
}

TEST(RewriteTest, SingleDigitReferencesOnly) {
  // "$12" reads as capture 1 followed by literal '2' — the exact property
  // that makes Apache's >10-capture overflow harmless to the output.
  auto rule = RewriteRule::Make("^(a)(b)$", "$12");
  std::vector<RewriteRule> rules;
  rules.push_back(std::move(*rule));
  EXPECT_EQ(*ApplyRules(rules, "ab"), "a2");
}

}  // namespace
}  // namespace fob
