// mini-Sendmail under the five policies (§4.4).

#include "src/apps/sendmail.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

TEST(SendmailInitTest, BoundsCheckDiesDuringInitialization) {
  // §4.4.4: the daemon's wakeup path has a memory error on *every*
  // execution, so the Bounds Check version "fails to operate at all".
  std::unique_ptr<SendmailApp> daemon;
  RunResult result = RunAsProcess(
      [&] { daemon = std::make_unique<SendmailApp>(AccessPolicy::kBoundsCheck); });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST(SendmailInitTest, StandardAndFailureObliviousInitialize) {
  for (AccessPolicy policy : {AccessPolicy::kStandard, AccessPolicy::kFailureOblivious,
                              AccessPolicy::kBoundless, AccessPolicy::kWrap}) {
    std::unique_ptr<SendmailApp> daemon;
    RunResult result = RunAsProcess([&] { daemon = std::make_unique<SendmailApp>(policy); });
    EXPECT_TRUE(result.ok()) << PolicyName(policy);
  }
}

TEST(SendmailInitTest, WakeupErrorsAccumulateInLog) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  uint64_t after_init = daemon.memory().log().read_errors();
  EXPECT_GE(after_init, 1u);  // init wakeup
  daemon.DaemonWakeup();
  daemon.DaemonWakeup();
  EXPECT_EQ(daemon.memory().log().read_errors(), after_init + 2);
}

TEST(SendmailSessionTest, LegitimateDeliveryAcrossPolicies) {
  for (AccessPolicy policy : {AccessPolicy::kStandard, AccessPolicy::kFailureOblivious}) {
    SendmailApp daemon(policy);
    auto responses = daemon.HandleSession(MakeSendmailSession("user@localhost", 64));
    ASSERT_GE(responses.size(), 5u) << PolicyName(policy);
    EXPECT_EQ(responses[0].substr(0, 3), "220");
    EXPECT_EQ(responses.back().substr(0, 3), "221");
    ASSERT_EQ(daemon.local_mailbox().size(), 1u) << PolicyName(policy);
    EXPECT_EQ(daemon.local_mailbox()[0].Header("From"), "sender@client.example");
  }
}

TEST(SendmailSessionTest, RemoteRecipientGoesToRelayQueue) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  daemon.HandleSession(MakeSendmailSession("someone@far.example", 16));
  EXPECT_EQ(daemon.local_mailbox().size(), 0u);
  EXPECT_EQ(daemon.relay_queue().size(), 1u);
}

TEST(SendmailSessionTest, CommandSequenceEnforced) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  EXPECT_EQ(daemon.HandleCommand("DATA").substr(0, 3), "503");
  EXPECT_EQ(daemon.HandleCommand("MAIL FROM:bogus").substr(0, 3), "501");
  EXPECT_EQ(daemon.HandleCommand("FROB x").substr(0, 3), "500");
  EXPECT_EQ(daemon.HandleCommand("NOOP").substr(0, 3), "250");
  EXPECT_EQ(daemon.HandleCommand("RSET").substr(0, 3), "250");
}

TEST(SendmailPrescanTest, NormalAddressesParse) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  std::string parsed, error;
  ASSERT_TRUE(daemon.PrescanAddress("user@example.org", &parsed, &error));
  EXPECT_EQ(parsed, "user@example.org");
}

TEST(SendmailPrescanTest, OverlongAddressRejected) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  std::string parsed, error;
  EXPECT_FALSE(daemon.PrescanAddress(std::string(100, 'x'), &parsed, &error));
  EXPECT_EQ(error.substr(0, 3), "553");
}

TEST(SendmailPrescanTest, QuotedPairCopiesEscapedChar) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  std::string parsed, error;
  // "a\\\\b": even backslash pair copies the escaped '\' through.
  ASSERT_TRUE(daemon.PrescanAddress("a\\\\b@x", &parsed, &error));
  EXPECT_NE(parsed.find('\\'), std::string::npos);
}

TEST(SendmailAttackTest, StandardCorruptsStackPossibleCodeInjection) {
  SendmailApp daemon(AccessPolicy::kStandard);
  RunResult result =
      RunAsProcess([&] { daemon.HandleSession(MakeSendmailAttackSession()); });
  EXPECT_EQ(result.status, ExitStatus::kStackSmash);
  EXPECT_TRUE(result.possible_code_injection);
}

TEST(SendmailAttackTest, FailureObliviousRejectsAddressAndContinues) {
  // §4.4.2: FO "discards the out of bounds writes (preserving the integrity
  // of the stack) and returns back out of the prescan... The standard error
  // processing logic then rejects the address".
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  std::vector<std::string> responses;
  RunResult result =
      RunAsProcess([&] { responses = daemon.HandleSession(MakeSendmailAttackSession()); });
  ASSERT_TRUE(result.ok());
  bool saw_reject = false;
  for (const std::string& r : responses) {
    if (r.substr(0, 3) == "553") {
      saw_reject = true;
    }
  }
  EXPECT_TRUE(saw_reject);
  EXPECT_EQ(responses.back().substr(0, 3), "221");
  // Subsequent commands processed correctly (§4.4.4).
  auto legit = daemon.HandleSession(MakeSendmailSession("user@localhost", 32));
  EXPECT_EQ(daemon.local_mailbox().size(), 1u);
  EXPECT_EQ(legit.back().substr(0, 3), "221");
}

TEST(SendmailAttackTest, RepeatedAttacksDoNotWearTheDaemonDown) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  for (int i = 0; i < 25; ++i) {
    auto responses = daemon.HandleSession(MakeSendmailAttackSession());
    EXPECT_EQ(responses.back().substr(0, 3), "221") << "attack " << i;
    daemon.HandleSession(MakeSendmailSession("user@localhost", 16));
  }
  EXPECT_EQ(daemon.local_mailbox().size(), 25u);
  EXPECT_GT(daemon.memory().log().total_errors(), 25u);
}

TEST(SendmailAttackTest, AttackAddressShapeDrivesUncheckedStores) {
  // White-box check of the attack mechanics: each "\\ \\ 0xff" triple
  // produces exactly one out-of-bounds write once the buffer is full.
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  uint64_t before = daemon.memory().log().write_errors();
  std::string parsed, error;
  EXPECT_FALSE(daemon.PrescanAddress(MakeSendmailAttackAddress(16), &parsed, &error));
  uint64_t oob_writes = daemon.memory().log().write_errors() - before;
  // 63 filler chars put q at 63; the first triple writes in bounds (63),
  // the remaining 15 write out of bounds, plus the trailing NUL.
  EXPECT_EQ(oob_writes, 16u);
}

}  // namespace
}  // namespace fob
