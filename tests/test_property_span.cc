// Span/byte equivalence property.
//
// The span fast path (Memory::ReadSpan/WriteSpan, AccessCursor) advertises
// byte-loop semantics: every span operation must be observably identical to
// the equivalent ReadU8/WriteU8 loop under every policy — identical memory
// contents, identical error-log records (including access indices),
// identical manufactured-value consumption, identical fault behaviour —
// including spans that straddle a unit boundary, dangle, or cover a whole
// foreign unit. Driven by deterministic random workloads over two Memories
// built with the same configuration: one walks byte loops, one walks spans.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/access_cursor.h"
#include "src/runtime/memory.h"
#include "src/softmem/fault.h"

namespace fob {
namespace {

class Xorshift {
 public:
  explicit Xorshift(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 2685821657736338717ull;
  }
  int64_t Range(int64_t lo, int64_t hi) {  // [lo, hi)
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo));
  }

 private:
  uint64_t state_;
};

// The two Memories under comparison. Allocation is deterministic, so the
// same call sequence yields identical addresses and unit ids on both sides.
struct Pair {
  explicit Pair(AccessPolicy policy) : ref(MakeConfig(policy)), span(MakeConfig(policy)) {}

  static Memory::Config MakeConfig(AccessPolicy policy) {
    Memory::Config config;
    config.policy = policy;
    return config;
  }

  Memory ref;   // byte-at-a-time loops
  Memory span;  // ReadSpan/WriteSpan
};

// Runs op(memory, use_span) on both sides, catching simulated faults; the
// fault outcome must match exactly.
template <typename Op>
void RunBoth(Pair& pair, Op op) {
  std::optional<FaultKind> ref_fault;
  std::optional<FaultKind> span_fault;
  try {
    op(pair.ref, false);
  } catch (const Fault& fault) {
    ref_fault = fault.kind();
  }
  try {
    op(pair.span, true);
  } catch (const Fault& fault) {
    span_fault = fault.kind();
  }
  ASSERT_EQ(ref_fault.has_value(), span_fault.has_value());
  if (ref_fault.has_value()) {
    EXPECT_EQ(*ref_fault, *span_fault);
  }
}

void ExpectSameState(Pair& pair, const std::vector<Ptr>& units,
                     const std::vector<size_t>& sizes) {
  // Raw contents of every unit, read below the checked layer so the
  // comparison itself perturbs nothing.
  for (size_t u = 0; u < units.size(); ++u) {
    std::string a(sizes[u], '\0');
    std::string b(sizes[u], '\0');
    bool ra = pair.ref.space().Read(units[u].addr, a.data(), sizes[u]);
    bool rb = pair.span.space().Read(units[u].addr, b.data(), sizes[u]);
    ASSERT_EQ(ra, rb);
    EXPECT_EQ(a, b) << "unit " << u << " contents diverged";
  }
  // Access accounting and manufactured-value consumption.
  EXPECT_EQ(pair.ref.access_count(), pair.span.access_count());
  EXPECT_EQ(pair.ref.sequence().values_produced(), pair.span.sequence().values_produced());
  // Error log: totals and every retained record, field by field.
  ASSERT_EQ(pair.ref.log().total_errors(), pair.span.log().total_errors());
  const auto& ra = pair.ref.log().recent();
  const auto& rb = pair.span.log().recent();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].is_write, rb[i].is_write) << "record " << i;
    EXPECT_EQ(ra[i].addr, rb[i].addr) << "record " << i;
    EXPECT_EQ(ra[i].size, rb[i].size) << "record " << i;
    EXPECT_EQ(ra[i].unit, rb[i].unit) << "record " << i;
    EXPECT_EQ(ra[i].unit_name, rb[i].unit_name) << "record " << i;
    EXPECT_EQ(ra[i].status, rb[i].status) << "record " << i;
    EXPECT_EQ(ra[i].access_index, rb[i].access_index) << "record " << i;
  }
  // Boundless store state.
  EXPECT_EQ(pair.ref.boundless().stored_bytes(), pair.span.boundless().stored_bytes());
}

void ByteLoopWrite(Memory& memory, Ptr p, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    memory.WriteU8(p + static_cast<int64_t>(i), src[i]);
  }
}

void ByteLoopRead(Memory& memory, Ptr p, uint8_t* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = memory.ReadU8(p + static_cast<int64_t>(i));
  }
}

class SpanEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<AccessPolicy, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpanEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kAllPolicies),
                       ::testing::Values(7u, 101u, 90210u)));

TEST_P(SpanEquivalenceTest, RandomSpansMatchByteLoops) {
  auto [policy, seed] = GetParam();
  Pair pair(policy);

  // The same layout on both sides: three live units and one freed (dangling
  // referent). Offsets stray past unit ends, below bases, and across the
  // boundary between allocations.
  std::vector<size_t> sizes = {48, 96, 32};
  std::vector<Ptr> ref_units;
  std::vector<Ptr> span_units;
  for (size_t size : sizes) {
    ref_units.push_back(pair.ref.Malloc(size, "unit"));
    span_units.push_back(pair.span.Malloc(size, "unit"));
    ASSERT_EQ(ref_units.back().addr, span_units.back().addr);
  }
  Ptr ref_dead = pair.ref.Malloc(64, "dead");
  Ptr span_dead = pair.span.Malloc(64, "dead");
  pair.ref.Free(ref_dead);
  pair.span.Free(span_dead);

  Xorshift rng(seed);
  for (int step = 0; step < 300; ++step) {
    bool use_dead = rng.Next() % 8 == 0;
    size_t u = static_cast<size_t>(rng.Next() % sizes.size());
    Ptr ref_base = use_dead ? ref_dead : ref_units[u];
    Ptr span_base = use_dead ? span_dead : span_units[u];
    size_t unit_size = use_dead ? 64 : sizes[u];
    int64_t offset = rng.Range(-24, static_cast<int64_t>(unit_size) + 24);
    size_t len = static_cast<size_t>(rng.Range(0, 80));
    bool is_write = rng.Next() % 2 == 0;
    uint8_t fill = static_cast<uint8_t>(rng.Next());

    if (is_write) {
      std::vector<uint8_t> data(len);
      for (size_t i = 0; i < len; ++i) {
        data[i] = static_cast<uint8_t>(fill + i);
      }
      RunBoth(pair, [&](Memory& memory, bool span) {
        Ptr p = (span ? span_base : ref_base) + offset;
        if (span) {
          memory.WriteSpan(p, data.data(), data.size());
        } else {
          ByteLoopWrite(memory, p, data.data(), data.size());
        }
      });
    } else {
      std::vector<uint8_t> ref_out(len, 0xee);
      std::vector<uint8_t> span_out(len, 0xee);
      RunBoth(pair, [&](Memory& memory, bool span) {
        Ptr p = (span ? span_base : ref_base) + offset;
        if (span) {
          memory.ReadSpan(p, span_out.data(), len);
        } else {
          ByteLoopRead(memory, p, ref_out.data(), len);
        }
      });
      EXPECT_EQ(ref_out, span_out) << "step " << step;
    }
    if (step % 25 == 0) {
      ExpectSameState(pair, ref_units, sizes);
      if (HasFatalFailure()) {
        return;
      }
    }
  }
  ExpectSameState(pair, ref_units, sizes);
}

// A span that starts in one unit's final bytes and runs past its end is the
// paper's canonical straddling access; pin the equivalence down explicitly,
// including the continuation bytes a read returns.
TEST_P(SpanEquivalenceTest, StraddlingSpansMatch) {
  auto [policy, seed] = GetParam();
  (void)seed;
  Pair pair(policy);
  Ptr ref_a = pair.ref.Malloc(40, "a");
  Ptr span_a = pair.span.Malloc(40, "a");
  Ptr ref_b = pair.ref.Malloc(40, "b");
  Ptr span_b = pair.span.Malloc(40, "b");
  ASSERT_EQ(ref_b.addr, span_b.addr);

  uint8_t payload[32];
  for (size_t i = 0; i < sizeof(payload); ++i) {
    payload[i] = static_cast<uint8_t>(0xc0 + i);
  }
  // 10 in-bounds bytes, 22 past the end.
  RunBoth(pair, [&](Memory& memory, bool span) {
    Ptr p = (span ? span_a : ref_a) + 30;
    if (span) {
      memory.WriteSpan(p, payload, sizeof(payload));
    } else {
      ByteLoopWrite(memory, p, payload, sizeof(payload));
    }
  });
  // Read the same straddling range back.
  uint8_t ref_out[32] = {0};
  uint8_t span_out[32] = {0};
  RunBoth(pair, [&](Memory& memory, bool span) {
    Ptr p = (span ? span_a : ref_a) + 30;
    if (span) {
      memory.ReadSpan(p, span_out, sizeof(span_out));
    } else {
      ByteLoopRead(memory, p, ref_out, sizeof(ref_out));
    }
  });
  for (size_t i = 0; i < sizeof(ref_out); ++i) {
    EXPECT_EQ(ref_out[i], span_out[i]) << "byte " << i;
  }
  ExpectSameState(pair, {ref_a, ref_b}, {40, 40});
}

// The persistent cursor must keep its equivalence across a unit's death: a
// cached resolution may never serve accesses into a retired unit.
TEST_P(SpanEquivalenceTest, CursorRevalidatesAfterFree) {
  auto [policy, seed] = GetParam();
  (void)seed;
  if (policy == AccessPolicy::kStandard || policy == AccessPolicy::kBoundsCheck) {
    GTEST_SKIP() << "free-then-use is fatal under non-continuing policies";
  }
  Pair pair(policy);
  Ptr ref_p = pair.ref.Malloc(64, "victim");
  Ptr span_p = pair.span.Malloc(64, "victim");

  AccessCursor cursor(pair.span);
  // Warm the cursor with in-bounds traffic.
  for (int i = 0; i < 64; ++i) {
    pair.ref.WriteU8(ref_p + i, static_cast<uint8_t>(i));
    cursor.WriteU8(span_p + i, static_cast<uint8_t>(i));
  }
  pair.ref.Free(ref_p);
  pair.span.Free(span_p);
  // Reuse the warmed cursor on the now-dangling pointer: both sides must log
  // dangling errors and continue identically.
  uint8_t ref_out[8];
  uint8_t span_out[8];
  for (int i = 0; i < 8; ++i) {
    ref_out[i] = pair.ref.ReadU8(ref_p + i);
    span_out[i] = cursor.ReadU8(span_p + i);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ref_out[i], span_out[i]) << "byte " << i;
  }
  EXPECT_EQ(pair.ref.log().total_errors(), pair.span.log().total_errors());
  EXPECT_EQ(pair.ref.access_count(), pair.span.access_count());
}

// Stale-bounds hazard through the cursor: after the cached unit retires and
// a fresh allocation reuses its address, the warmed cursor's fallback path
// (now fronted by the page-map fast path in Memory) must classify accesses
// through the stale pointer dangling — never serve them from the fresh
// unit now owning the page — and keep byte-loop equivalence throughout.
TEST_P(SpanEquivalenceTest, CursorStaleBoundsAfterAddressReuse) {
  auto [policy, seed] = GetParam();
  (void)seed;
  if (policy == AccessPolicy::kStandard || policy == AccessPolicy::kBoundsCheck) {
    GTEST_SKIP() << "free-then-use is fatal under non-continuing policies";
  }
  Pair pair(policy);
  Ptr ref_p = pair.ref.Malloc(2 * kPageSize, "victim");
  Ptr span_p = pair.span.Malloc(2 * kPageSize, "victim");

  AccessCursor cursor(pair.span);
  for (int i = 0; i < 64; ++i) {
    pair.ref.WriteU8(ref_p + i, static_cast<uint8_t>(i));
    cursor.WriteU8(span_p + i, static_cast<uint8_t>(i));
  }
  pair.ref.Free(ref_p);
  pair.span.Free(span_p);
  // Fresh allocations reuse the freed address under new unit ids; the page
  // map now names them as the pages' owners.
  Ptr ref_fresh = pair.ref.Malloc(2 * kPageSize, "fresh");
  Ptr span_fresh = pair.span.Malloc(2 * kPageSize, "fresh");
  ASSERT_EQ(ref_fresh.addr, ref_p.addr);
  ASSERT_EQ(span_fresh.addr, span_p.addr);
  pair.ref.WriteU8(ref_fresh, 0x77);
  pair.span.WriteU8(span_fresh, 0x77);

  // Both sides access through the stale pointers: dangling on both, same
  // values, same logs — and the fresh units' bytes stay untouched.
  uint8_t ref_out[8];
  uint8_t span_out[8];
  for (int i = 0; i < 8; ++i) {
    ref_out[i] = pair.ref.ReadU8(ref_p + i);
    span_out[i] = cursor.ReadU8(span_p + i);
    pair.ref.WriteU8(ref_p + i, 0xee);
    cursor.WriteU8(span_p + i, 0xee);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ref_out[i], span_out[i]) << "byte " << i;
  }
  ExpectSameState(pair, {ref_fresh}, {2 * kPageSize});
  ASSERT_GT(pair.span.log().total_errors(), 0u);
  EXPECT_EQ(pair.span.log().recent().back().status, PointerStatus::kDangling);
  EXPECT_EQ(pair.span.log().recent().back().unit_name, "victim");
  EXPECT_EQ(pair.span.ReadU8(span_fresh), 0x77);
}

}  // namespace
}  // namespace fob
