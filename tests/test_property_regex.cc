// Property tests: the regex engine against std::regex as an oracle.
//
// For a family of generated patterns restricted to the syntax both engines
// share (ECMAScript-compatible subset), every engine must agree with
// std::regex on match/no-match and on the group-0 span of the leftmost
// match.

#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

#include "src/regex/regex.h"

namespace fob {
namespace {

struct OracleCase {
  std::string pattern;
  std::vector<std::string> subjects;
};

const OracleCase kCases[] = {
    {"a+b", {"", "b", "ab", "aaab", "xaaabz", "aa"}},
    {"(ab)+", {"", "ab", "abab", "aab", "xxababy"}},
    // Note: "a\nc" is deliberately absent — this engine is POSIX-flavored
    // ('.' matches newline, like the regexec Apache links), while the
    // std::regex oracle is ECMAScript ('.' excludes it).
    {"a.c", {"abc", "ac", "azc", "xxabcxx"}},
    {"^[0-9]+$", {"123", "12a", "", "0", "999999"}},
    {"(a|bc)*d", {"d", "ad", "bcd", "abcad", "abc"}},
    {"x{2,3}", {"x", "xx", "xxx", "xxxx", "yxxy"}},
    {"[a-c]([x-z])\\1?", {"ax", "by", "czz", "dz"}},  // backrefs unsupported: skip below
    {"(\\w+)@(\\w+)\\.com", {"me@site.com", "me@site.org", "@.com", "a@b.com extra"}},
    {"ab?c?d", {"ad", "abd", "acd", "abcd", "abc"}},
    {"[^aeiou]+", {"bcdfg", "aaa", "xay", ""}},
};

bool UsesUnsupportedSyntax(const std::string& pattern) {
  return pattern.find("\\1") != std::string::npos;
}

TEST(RegexOracleTest, AgreesWithStdRegexOnCuratedFamilies) {
  for (const OracleCase& oracle_case : kCases) {
    if (UsesUnsupportedSyntax(oracle_case.pattern)) {
      continue;
    }
    auto mine = Regex::Compile(oracle_case.pattern);
    ASSERT_TRUE(mine.has_value()) << oracle_case.pattern;
    std::regex theirs(oracle_case.pattern, std::regex::ECMAScript);
    for (const std::string& subject : oracle_case.subjects) {
      MatchResult my_match = mine->Search(subject);
      std::smatch their_match;
      bool their_found = std::regex_search(subject, their_match, theirs);
      ASSERT_EQ(my_match.matched, their_found)
          << "pattern '" << oracle_case.pattern << "' subject '" << subject << "'";
      if (their_found) {
        EXPECT_EQ(my_match.groups[0].first, their_match.position(0))
            << "pattern '" << oracle_case.pattern << "' subject '" << subject << "'";
        EXPECT_EQ(my_match.groups[0].second - my_match.groups[0].first,
                  static_cast<int>(their_match.length(0)))
            << "pattern '" << oracle_case.pattern << "' subject '" << subject << "'";
      }
    }
  }
}

TEST(RegexOracleTest, GeneratedLiteralAlternations) {
  // Patterns like ^(s1|s2|s3)$ over generated strings: agreement with a
  // direct set-membership oracle.
  std::vector<std::string> words = {"cat", "dog", "bird", "ca", "catt", "do"};
  auto regex = Regex::Compile("^(cat|dog|bird)$");
  ASSERT_TRUE(regex.has_value());
  for (const std::string& word : words) {
    bool expected = word == "cat" || word == "dog" || word == "bird";
    EXPECT_EQ(regex->Search(word).matched, expected) << word;
  }
}

TEST(RegexOracleTest, QuantifierBoundsSweep) {
  for (int min = 0; min <= 3; ++min) {
    for (int max = min; max <= 4; ++max) {
      std::string pattern =
          "^a{" + std::to_string(min) + "," + std::to_string(max) + "}$";
      auto regex = Regex::Compile(pattern);
      ASSERT_TRUE(regex.has_value()) << pattern;
      for (int n = 0; n <= 6; ++n) {
        bool expected = n >= min && n <= max;
        EXPECT_EQ(regex->Search(std::string(static_cast<size_t>(n), 'a')).matched, expected)
            << pattern << " with " << n << " a's";
      }
    }
  }
}

TEST(RegexOracleTest, CaptureSpansMatchStdRegex) {
  struct CaptureCase {
    const char* pattern;
    const char* subject;
  };
  const CaptureCase cases[] = {
      {"(a+)(b+)", "xaabbby"},
      {"(\\d+)-(\\d+)", "range 10-25 end"},
      {"(a(b)c)d", "abcd"},
      {"(x*)y", "y"},
  };
  for (const auto& capture_case : cases) {
    auto mine = Regex::Compile(capture_case.pattern);
    ASSERT_TRUE(mine.has_value());
    std::regex theirs(capture_case.pattern);
    std::string subject = capture_case.subject;
    MatchResult my_match = mine->Search(subject);
    std::smatch their_match;
    ASSERT_TRUE(std::regex_search(subject, their_match, theirs));
    ASSERT_TRUE(my_match.matched);
    ASSERT_EQ(my_match.GroupCount(), static_cast<int>(their_match.size()));
    for (size_t g = 0; g < their_match.size(); ++g) {
      if (!their_match[g].matched) {
        EXPECT_EQ(my_match.groups[g].first, -1);
        continue;
      }
      EXPECT_EQ(my_match.groups[g].first, their_match.position(g))
          << capture_case.pattern << " group " << g;
      EXPECT_EQ(std::string(my_match.Group(subject, static_cast<int>(g))),
                their_match[g].str())
          << capture_case.pattern << " group " << g;
    }
  }
}

}  // namespace
}  // namespace fob
