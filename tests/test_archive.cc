#include <gtest/gtest.h>

#include <string>

#include "src/archive/gzip.h"
#include "src/archive/tar.h"

namespace fob {
namespace {

// ---- tar ----------------------------------------------------------------

TEST(TarTest, EmptyArchiveRoundTrip) {
  std::string bytes = WriteTar({});
  EXPECT_EQ(bytes.size(), 1024u);  // two terminator blocks
  auto entries = ReadTar(bytes);
  ASSERT_TRUE(entries.has_value());
  EXPECT_TRUE(entries->empty());
}

TEST(TarTest, FileRoundTrip) {
  auto entries = ReadTar(WriteTar({TarEntry::File("dir/hello.txt", "hello tar\n")}));
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "dir/hello.txt");
  EXPECT_EQ((*entries)[0].type, TarEntryType::kFile);
  EXPECT_EQ((*entries)[0].data, "hello tar\n");
}

TEST(TarTest, SymlinkRoundTrip) {
  auto entries = ReadTar(WriteTar({TarEntry::Symlink("link", "/usr/share/target")}));
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].type, TarEntryType::kSymlink);
  EXPECT_EQ((*entries)[0].link_target, "/usr/share/target");
  EXPECT_TRUE((*entries)[0].data.empty());
}

TEST(TarTest, MixedEntriesPreserveOrder) {
  std::vector<TarEntry> in = {
      TarEntry::Directory("d/"),
      TarEntry::File("d/a.txt", std::string(513, 'a')),  // crosses a block
      TarEntry::Symlink("d/s", "/abs/target"),
      TarEntry::File("d/b.txt", ""),
  };
  auto out = ReadTar(WriteTar(in));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 4u);
  EXPECT_EQ((*out)[0].type, TarEntryType::kDirectory);
  EXPECT_EQ((*out)[1].data.size(), 513u);
  EXPECT_EQ((*out)[2].link_target, "/abs/target");
  EXPECT_EQ((*out)[3].data, "");
}

TEST(TarTest, ChecksumValidationRejectsCorruption) {
  std::string bytes = WriteTar({TarEntry::File("x", "data")});
  bytes[0] ^= 0x7f;  // corrupt the name field
  EXPECT_FALSE(ReadTar(bytes).has_value());
}

TEST(TarTest, TruncatedDataRejected) {
  std::string bytes = WriteTar({TarEntry::File("x", std::string(600, 'q'))});
  // Chop inside the data blocks.
  bytes.resize(512 + 100);
  EXPECT_FALSE(ReadTar(bytes).has_value());
}

TEST(TarTest, OverlongNamesUnsupported) {
  EXPECT_TRUE(WriteTar({TarEntry::File(std::string(150, 'n'), "x")}).empty());
  EXPECT_TRUE(WriteTar({TarEntry::Symlink("ok", std::string(150, 't'))}).empty());
}

// ---- gzip ----------------------------------------------------------------

TEST(GzipTest, Crc32KnownVectors) {
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);  // the classic check value
  EXPECT_EQ(Crc32("hello"), 0x3610a686u);
}

TEST(GzipTest, RoundTripSmall) {
  for (const std::string& s :
       {std::string(""), std::string("x"), std::string("hello gzip"), std::string(100, '\0')}) {
    auto out = GunzipStore(GzipStore(s));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, s);
  }
}

TEST(GzipTest, RoundTripMultiBlock) {
  std::string big(200000, '\0');  // needs four stored blocks
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 31);
  }
  auto out = GunzipStore(GzipStore(big));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, big);
}

TEST(GzipTest, BadMagicReported) {
  GunzipError error = GunzipError::kTruncated;
  EXPECT_FALSE(GunzipStore(std::string(32, 'z'), &error).has_value());
  EXPECT_EQ(error, GunzipError::kBadMagic);
}

TEST(GzipTest, CrcMismatchReported) {
  std::string bytes = GzipStore("payload");
  bytes[bytes.size() - 9] ^= 0x55;  // flip a payload byte, CRC now wrong
  GunzipError error = GunzipError::kBadMagic;
  EXPECT_FALSE(GunzipStore(bytes, &error).has_value());
  EXPECT_EQ(error, GunzipError::kBadCrc);
}

TEST(GzipTest, TruncationReported) {
  std::string bytes = GzipStore("some payload");
  bytes.resize(bytes.size() - 6);
  GunzipError error = GunzipError::kBadMagic;
  EXPECT_FALSE(GunzipStore(bytes, &error).has_value());
  EXPECT_EQ(error, GunzipError::kTruncated);
}

TEST(GzipTest, CompressedBlocksReportedAsUnsupported) {
  std::string bytes = GzipStore("x");
  // Force BTYPE=01 (fixed Huffman) in the first deflate block header.
  bytes[10] = static_cast<char>(bytes[10] | 0x02);
  GunzipError error = GunzipError::kBadMagic;
  EXPECT_FALSE(GunzipStore(bytes, &error).has_value());
  EXPECT_EQ(error, GunzipError::kUnsupportedCompression);
}

TEST(GzipTest, TgzRoundTrip) {
  // The full Midnight Commander input path: tar -> gzip -> gunzip -> untar.
  std::string tar = WriteTar({TarEntry::File("readme", "content"),
                              TarEntry::Symlink("s", "/abs/path")});
  auto unzipped = GunzipStore(GzipStore(tar));
  ASSERT_TRUE(unzipped.has_value());
  auto entries = ReadTar(*unzipped);
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[1].link_target, "/abs/path");
}

}  // namespace
}  // namespace fob
