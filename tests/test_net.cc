#include <gtest/gtest.h>

#include <string>

#include "src/codec/utf7.h"
#include "src/mail/message.h"
#include "src/net/channel.h"
#include "src/net/http.h"
#include "src/net/imap.h"
#include "src/net/smtp.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

// ---- LineChannel ----------------------------------------------------------

TEST(ChannelTest, ClientToServerFifo) {
  LineChannel channel;
  channel.ClientSend("one");
  channel.ClientSend("two");
  EXPECT_EQ(channel.ServerReceive(), "one");
  EXPECT_EQ(channel.ServerReceive(), "two");
  EXPECT_FALSE(channel.ServerReceive().has_value());
}

TEST(ChannelTest, ServerToClient) {
  LineChannel channel;
  channel.ServerSend("220 ready");
  channel.ServerSend("250 ok");
  auto lines = channel.ClientReceiveAll();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "220 ready");
  EXPECT_EQ(lines[1], "250 ok");
}

// ---- HTTP ---------------------------------------------------------------

TEST(HttpTest, ParseRequestLine) {
  auto request = HttpRequest::Parse("GET /index.html HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/index.html");
  EXPECT_EQ(request->version, "HTTP/1.0");
}

TEST(HttpTest, ParseHeaders) {
  auto request =
      HttpRequest::Parse("GET / HTTP/1.0\r\nHost: example.org\r\nX-Test:  spaced \r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->Header("host"), "example.org");  // case-insensitive
  EXPECT_EQ(request->Header("x-test"), "spaced");
  EXPECT_EQ(request->Header("missing"), "");
}

TEST(HttpTest, ParseRejectsMalformed) {
  EXPECT_FALSE(HttpRequest::Parse("").has_value());
  EXPECT_FALSE(HttpRequest::Parse("GET\r\n").has_value());
  EXPECT_FALSE(HttpRequest::Parse("GET /\r\n").has_value());
  EXPECT_FALSE(HttpRequest::Parse("GET / FTP/1.0\r\n").has_value());
}

TEST(HttpTest, SerializeParseRoundTrip) {
  HttpRequest request;
  request.method = "GET";
  request.path = "/a/b?q=1";
  request.headers.emplace_back("Host", "unit.test");
  auto reparsed = HttpRequest::Parse(request.Serialize());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->path, "/a/b?q=1");
  EXPECT_EQ(reparsed->Header("Host"), "unit.test");
}

TEST(HttpTest, ResponseHelpers) {
  HttpResponse ok = HttpResponse::Ok("<html>hi</html>");
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.Serialize().find("Content-Length: 15"), std::string::npos);
  HttpResponse nf = HttpResponse::NotFound("/missing");
  EXPECT_EQ(nf.status, 404);
  EXPECT_NE(nf.Serialize().find("404"), std::string::npos);
  EXPECT_EQ(HttpResponse::BadRequest("x").status, 400);
}

// ---- SMTP ---------------------------------------------------------------

TEST(SmtpTest, ParseCommandUppercasesVerb) {
  SmtpCommand c = ParseSmtpCommand("helo client.example");
  EXPECT_EQ(c.verb, "HELO");
  EXPECT_EQ(c.arg, "client.example");
}

TEST(SmtpTest, ParseMailFrom) {
  SmtpCommand c = ParseSmtpCommand("MAIL FROM:<user@example.org>");
  EXPECT_EQ(c.verb, "MAIL");
  EXPECT_EQ(c.arg, "FROM:<user@example.org>");
  EXPECT_EQ(ExtractAngleAddress(c.arg), "user@example.org");
}

TEST(SmtpTest, ExtractAddressEdgeCases) {
  EXPECT_EQ(ExtractAngleAddress("TO:<>"), "");
  EXPECT_FALSE(ExtractAngleAddress("TO:user@host").has_value());
  EXPECT_FALSE(ExtractAngleAddress("TO:<user@host").has_value());
}

TEST(SmtpTest, CommandWithNoArg) {
  SmtpCommand c = ParseSmtpCommand("DATA");
  EXPECT_EQ(c.verb, "DATA");
  EXPECT_TRUE(c.arg.empty());
  EXPECT_EQ(ParseSmtpCommand("QUIT\r").verb, "QUIT");
}

// ---- IMAP ---------------------------------------------------------------

TEST(ImapTest, SelectExistingFolder) {
  ImapServer imap;
  ASSERT_TRUE(imap.AddFolderUtf8("INBOX", {MailMessage::Make("a@b", "c@d", "hi", "body")}));
  auto result = imap.Select("INBOX");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.message_count, 1u);
}

TEST(ImapTest, SelectMissingFolderSaysNo) {
  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {});
  auto result = imap.Select("Drafts");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.response.find("does not exist"), std::string::npos);
}

TEST(ImapTest, NonAsciiFolderStoredUnderUtf7Name) {
  ImapServer imap;
  std::string utf8 = "mail/\xe5\x8f\xb0\xe5\x8c\x97";  // mail/台北
  ASSERT_TRUE(imap.AddFolderUtf8(utf8, {}));
  std::string utf7 = *Utf8ToUtf7(utf8);
  EXPECT_TRUE(imap.Select(utf7).ok);
  EXPECT_FALSE(imap.Select(utf8).ok);  // raw UTF-8 is not the wire name
}

TEST(ImapTest, TruncatedUtf7NameDoesNotMatch) {
  // The Mutt scenario: failure-oblivious truncation produces a prefix of the
  // correct UTF-7 name, which the server correctly rejects.
  ImapServer imap;
  std::string utf8 = "folders/\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e";
  ASSERT_TRUE(imap.AddFolderUtf8(utf8, {}));
  std::string utf7 = *Utf8ToUtf7(utf8);
  std::string truncated = utf7.substr(0, utf7.size() / 2);
  auto result = imap.Select(truncated);
  EXPECT_FALSE(result.ok);
}

TEST(ImapTest, FetchMessages) {
  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {MailMessage::Make("a@b", "x@y", "s1", "b1"),
                               MailMessage::Make("c@d", "x@y", "s2", "b2")});
  auto m = imap.Fetch("INBOX", 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->Subject(), "s2");
  EXPECT_FALSE(imap.Fetch("INBOX", 0).has_value());
  EXPECT_FALSE(imap.Fetch("INBOX", 3).has_value());
  EXPECT_FALSE(imap.Fetch("Nope", 1).has_value());
}

TEST(ImapTest, MoveMessageBetweenFolders) {
  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {MailMessage::Make("a@b", "x@y", "move me", "")});
  imap.AddFolderUtf8("Archive", {});
  ASSERT_TRUE(imap.MoveMessage("INBOX", 1, "Archive"));
  EXPECT_EQ(imap.Select("INBOX").message_count, 0u);
  EXPECT_EQ(imap.Select("Archive").message_count, 1u);
  EXPECT_FALSE(imap.MoveMessage("INBOX", 1, "Archive"));  // now empty
}

TEST(ImapTest, AppendToFolder) {
  ImapServer imap;
  imap.AddFolderUtf8("Sent", {});
  EXPECT_TRUE(imap.Append("Sent", MailMessage::Make("me@here", "you@there", "s", "b")));
  EXPECT_FALSE(imap.Append("Ghost", MailMessage::Make("a", "b", "c", "d")));
  EXPECT_EQ(imap.Select("Sent").message_count, 1u);
}

TEST(HttpTest, ParsesRequestFromCheckedConnectionBuffer) {
  Memory memory(AccessPolicy::kFailureOblivious);
  const std::string wire = "GET /index.html HTTP/1.0\r\nHost: example.org\r\n\r\n";
  Ptr conn = memory.NewBytes(wire, "conn_buf");
  auto request = HttpRequest::Parse(memory, conn, wire.size());
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/index.html");
  EXPECT_EQ(request->Header("Host"), "example.org");
  EXPECT_EQ(memory.log().total_errors(), 0u);
}

TEST(HttpTest, ConnectionBufferOverreadSurvivesUnderFailureOblivious) {
  Memory memory(AccessPolicy::kFailureOblivious);
  const std::string wire = "GET / HTTP/1.0\r\n\r\n";
  Ptr conn = memory.NewBytes(wire, "conn_buf");
  // A worker that trusts a bad Content-Length reads past the buffer; the
  // request still parses and the server answers instead of dying.
  auto request = HttpRequest::Parse(memory, conn, wire.size() + 32);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->path, "/");
  EXPECT_GT(memory.log().total_errors(), 0u);
}

}  // namespace
}  // namespace fob
