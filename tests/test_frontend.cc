// The serving substrate: LineChannel close/EOF semantics, ServerRequest/
// ServerResponse wire serialization, and the Frontend's multiplexed,
// batched dispatch onto a WorkerPool — including the crash path (failed
// request answered with an error, batch remainder re-queued onto the
// replacement worker), the persistent lane executor (threads started once,
// zero churn per pump, clean drain on destruction), plan-based work
// stealing (per-client response order and determinism preserved), and the
// overload watermark (explicit kOverloadedStatus shed, crash-requeued work
// exempt).

#include "src/net/frontend.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/harness/workloads.h"
#include "src/net/channel.h"

namespace fob {
namespace {

// ---- LineChannel close/EOF --------------------------------------------------

TEST(LineChannelEofTest, ReceiveDistinguishesNoInputFromClosed) {
  LineChannel channel;
  EXPECT_EQ(channel.ServerReceiveLine().status, LineChannel::RecvStatus::kNoInput);
  channel.ClientSend("hello");
  channel.ClientClose();
  // Queued lines drain before EOF is reported.
  LineChannel::Recv recv = channel.ServerReceiveLine();
  ASSERT_TRUE(recv.has_line());
  EXPECT_EQ(recv.line, "hello");
  EXPECT_EQ(channel.ServerReceiveLine().status, LineChannel::RecvStatus::kClosed);
  EXPECT_TRUE(channel.ServerAtEof());
}

TEST(LineChannelEofTest, SendAfterCloseIsDropped) {
  LineChannel channel;
  channel.ClientClose();
  channel.ClientSend("too late");
  EXPECT_FALSE(channel.ServerHasInput());
  EXPECT_TRUE(channel.ServerAtEof());
}

TEST(LineChannelEofTest, ServerSideCloseMirrors) {
  LineChannel channel;
  channel.ServerSend("bye");
  channel.ServerClose();
  EXPECT_EQ(channel.ClientReceiveLine().line, "bye");
  EXPECT_TRUE(channel.ClientReceiveLine().closed());
  EXPECT_TRUE(channel.ClientAtEof());
}

TEST(LineChannelEofTest, LegacyOptionalApiStillConflates) {
  LineChannel channel;
  EXPECT_FALSE(channel.ServerReceive().has_value());  // no input yet
  channel.ClientClose();
  EXPECT_FALSE(channel.ServerReceive().has_value());  // closed: same nullopt
}

// ---- Wire serialization -----------------------------------------------------

TEST(ServerWireTest, RequestRoundTripsThroughOneLine) {
  ServerRequest request;
  request.tag = RequestTag::kAttack;
  request.client_id = 42;
  request.op = "browse";
  request.target = "/a\tb";  // field separator must be escaped
  request.arg = "x%y";
  request.arg2 = "z";
  request.lines = {"HELO one", "MAIL FROM:<a@b>"};
  request.payload = std::string("\x1f\x8b\x00\xff binary", 12);
  request.expect = "6";

  std::string line = request.Serialize();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto back = ServerRequest::Deserialize(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tag, request.tag);
  EXPECT_EQ(back->client_id, request.client_id);
  EXPECT_EQ(back->op, request.op);
  EXPECT_EQ(back->target, request.target);
  EXPECT_EQ(back->arg, request.arg);
  EXPECT_EQ(back->arg2, request.arg2);
  EXPECT_EQ(back->lines, request.lines);
  EXPECT_EQ(back->payload, request.payload);
  EXPECT_EQ(back->expect, request.expect);
}

TEST(ServerWireTest, ResponseRoundTripsThroughOneLine) {
  ServerResponse response;
  response.ok = true;
  response.acceptable = true;
  response.status = 200;
  response.body = "<html>\npage\n</html>";
  response.error = "";
  response.lines = {"220 ready", "221 bye"};

  auto back = ServerResponse::Deserialize(response.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ok, response.ok);
  EXPECT_EQ(back->acceptable, response.acceptable);
  EXPECT_EQ(back->status, response.status);
  EXPECT_EQ(back->body, response.body);
  EXPECT_EQ(back->lines, response.lines);
}

TEST(ServerWireTest, MalformedLinesAreRejected) {
  EXPECT_FALSE(ServerRequest::Deserialize("").has_value());
  EXPECT_FALSE(ServerRequest::Deserialize("RSP\t1").has_value());
  EXPECT_FALSE(ServerRequest::Deserialize("REQ\t9\t0\tget").has_value());
  EXPECT_FALSE(ServerResponse::Deserialize("REQ\t0\t0\t0\t\t\t").has_value());
}

// ---- Frontend ----------------------------------------------------------------

ServerRequest Get(const std::string& path, RequestTag tag = RequestTag::kLegit) {
  return MakeRequest(tag, "get", path);
}

Frontend::Factory ApacheFactory(AccessPolicy policy) {
  return [policy] { return MakeServerApp(Server::kApache, policy); };
}

TEST(FrontendTest, MultiplexesInterleavedClientsOntoThePool) {
  Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                    Frontend::Options{.workers = 2, .batch = 3});
  LineChannel& a = frontend.Connect(1);
  LineChannel& b = frontend.Connect(2);
  LineChannel& c = frontend.Connect(3);
  a.ClientSend(Get("/index.html").Serialize());
  b.ClientSend(Get("/docs/flexc.html").Serialize());
  a.ClientSend(Get("/index.html").Serialize());
  c.ClientSend(Get("/files/big.bin").Serialize());
  a.ClientClose();
  b.ClientClose();
  c.ClientClose();

  EXPECT_EQ(frontend.Run(), 4u);
  EXPECT_TRUE(frontend.Idle());

  // Each client got exactly its own responses, in order.
  std::vector<std::string> a_lines = a.ClientReceiveAll();
  ASSERT_EQ(a_lines.size(), 2u);
  for (const std::string& line : a_lines) {
    auto response = ServerResponse::Deserialize(line);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    EXPECT_NE(response->body.find("research project"), std::string::npos);
  }
  auto b_response = ServerResponse::Deserialize(b.ClientReceiveAll().at(0));
  ASSERT_TRUE(b_response.has_value());
  EXPECT_NE(b_response->body.find("docs"), std::string::npos);
  auto c_response = ServerResponse::Deserialize(c.ClientReceiveAll().at(0));
  ASSERT_TRUE(c_response.has_value());
  EXPECT_EQ(c_response->body.size(), 830 * 1024u);
  EXPECT_EQ(frontend.restarts(), 0u);
}

TEST(FrontendTest, CrashMidBatchRequeuesTheRemainder) {
  // Standard compilation: the attack GET smashes the worker's stack. The
  // fair ingest sweep interleaves the two clients, so the batch is
  // [victim:index, bystander:index, victim:attack, bystander:docs]: the two
  // requests before the attack keep their responses, the attack request is
  // answered with an error, and the one behind it is re-queued onto the
  // replacement worker.
  Frontend frontend(ApacheFactory(AccessPolicy::kStandard),
                    Frontend::Options{.workers = 1, .batch = 4});
  LineChannel& victim = frontend.Connect(1);
  LineChannel& bystander = frontend.Connect(2);
  victim.ClientSend(Get("/index.html").Serialize());
  victim.ClientSend(Get(MakeApacheAttackUrl(), RequestTag::kAttack).Serialize());
  bystander.ClientSend(Get("/index.html").Serialize());
  bystander.ClientSend(Get("/docs/flexc.html").Serialize());
  victim.ClientClose();
  bystander.ClientClose();

  EXPECT_EQ(frontend.Run(), 4u);  // every request got *some* response
  EXPECT_EQ(frontend.stats().failed, 1u);
  EXPECT_EQ(frontend.stats().requeued, 1u);
  EXPECT_EQ(frontend.stats().batches, 2u);  // crashed batch + re-queued remainder
  EXPECT_EQ(frontend.restarts(), 1u);

  std::vector<std::string> victim_lines = victim.ClientReceiveAll();
  ASSERT_EQ(victim_lines.size(), 2u);
  EXPECT_EQ(ServerResponse::Deserialize(victim_lines[0])->status, 200);
  auto crash_response = ServerResponse::Deserialize(victim_lines[1]);
  EXPECT_EQ(crash_response->status, 500);
  EXPECT_NE(crash_response->error.find("worker crashed"), std::string::npos);

  // The bystander's requests — behind the attack in the same batch — were
  // re-queued and served by the replacement worker.
  std::vector<std::string> bystander_lines = bystander.ClientReceiveAll();
  ASSERT_EQ(bystander_lines.size(), 2u);
  EXPECT_EQ(ServerResponse::Deserialize(bystander_lines[0])->status, 200);
  EXPECT_EQ(ServerResponse::Deserialize(bystander_lines[1])->status, 200);
}

TEST(FrontendTest, FailureObliviousPoolAbsorbsTheSameMixWithoutRestarts) {
  Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                    Frontend::Options{.workers = 1, .batch = 4});
  LineChannel& client = frontend.Connect(1);
  client.ClientSend(Get("/index.html").Serialize());
  client.ClientSend(Get(MakeApacheAttackUrl(), RequestTag::kAttack).Serialize());
  client.ClientSend(Get("/index.html").Serialize());
  client.ClientClose();

  EXPECT_EQ(frontend.Run(), 3u);
  EXPECT_EQ(frontend.restarts(), 0u);
  EXPECT_EQ(frontend.stats().failed, 0u);
  for (const std::string& line : client.ClientReceiveAll()) {
    EXPECT_EQ(ServerResponse::Deserialize(line)->status, 200);
  }
}

TEST(FrontendTest, BatchSizeOneDegeneratesToPerRequestDispatch) {
  Frontend frontend(ApacheFactory(AccessPolicy::kStandard),
                    Frontend::Options{.workers = 2, .batch = 1});
  LineChannel& client = frontend.Connect(7);
  for (int i = 0; i < 3; ++i) {
    client.ClientSend(Get(MakeApacheAttackUrl(), RequestTag::kAttack).Serialize());
    client.ClientSend(Get("/index.html").Serialize());
  }
  client.ClientClose();
  EXPECT_EQ(frontend.Run(), 6u);
  // Per-request batches: every attack kills exactly one worker, nothing is
  // ever re-queued.
  EXPECT_EQ(frontend.restarts(), 3u);
  EXPECT_EQ(frontend.stats().failed, 3u);
  EXPECT_EQ(frontend.stats().requeued, 0u);
}

TEST(FrontendTest, SessionAffinityRoutesAClientToOneStickyWorkerShard) {
  // Steal off: this test pins *sticky-only* routing — with stealing, an
  // over-backlogged client's batches may legitimately run on idle shards.
  Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                    Frontend::Options{.workers = 4, .batch = 2, .steal = false});
  // First-seen round robin: clients bind to lanes in connection order, and
  // the binding never changes while the client stays open.
  LineChannel& a = frontend.Connect(10);
  LineChannel& b = frontend.Connect(20);
  size_t lane_a = frontend.LaneOf(10);
  size_t lane_b = frontend.LaneOf(20);
  EXPECT_NE(lane_a, lane_b);
  EXPECT_EQ(frontend.affinity_size(), 2u);

  // Client A's requests include attacks; client B's are clean. After a
  // parallel run, every one of A's error records must sit in A's sticky
  // shard and B's shard must be clean — the requests never migrated.
  for (int i = 0; i < 3; ++i) {
    a.ClientSend(Get(MakeApacheAttackUrl(), RequestTag::kAttack).Serialize());
    a.ClientSend(Get("/index.html").Serialize());
    b.ClientSend(Get("/index.html").Serialize());
  }
  a.ClientClose();
  b.ClientClose();
  EXPECT_EQ(frontend.Run(), 9u);
  EXPECT_GT(frontend.pool().worker(lane_a).memory().log().total_errors(), 0u);
  EXPECT_EQ(frontend.pool().worker(lane_b).memory().log().total_errors(), 0u);
  // The merged view still sees everything, in shard-id order.
  EXPECT_EQ(frontend.MergedLog().total_errors(),
            frontend.pool().worker(lane_a).memory().log().total_errors());
  // Both channels reached EOF during the run, so their affinity entries were
  // evicted — a long-lived frontend does not leak one entry per client ever
  // seen.
  EXPECT_EQ(frontend.affinity_size(), 0u);
}

TEST(FrontendTest, AffinityEntriesEvictWhenAClientDrainsToEof) {
  Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                    Frontend::Options{.workers = 2, .batch = 4});
  LineChannel& gone = frontend.Connect(1);
  LineChannel& open = frontend.Connect(2);
  gone.ClientSend(Get("/index.html").Serialize());
  open.ClientSend(Get("/index.html").Serialize());
  gone.ClientClose();  // at EOF once its one request drains
  EXPECT_EQ(frontend.Pump(), 2u);
  // The closed-and-drained client's lane binding is gone; the open one's
  // survives the pump (it may still send).
  EXPECT_EQ(frontend.affinity_size(), 1u);
  size_t open_lane = frontend.LaneOf(2);
  open.ClientSend(Get("/index.html").Serialize());
  EXPECT_EQ(frontend.Pump(), 1u);
  EXPECT_EQ(frontend.LaneOf(2), open_lane);  // binding stayed stable
}

TEST(FrontendTest, NewClientsBindToTheLeastLoadedLane) {
  // Steal off so lane load is exactly sticky backlog. Clients 1 and 2 bind
  // round-robin to lanes 0 and 1 (all depths equal), wrapping the cursor
  // back to lane 0. Mid-partition, client 3 arrives while client 1 has a
  // deep backlog on lane 0 — blind round robin would hand client 3 the
  // cursor's lane 0; least-loaded binds it to idle lane 1.
  Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                    Frontend::Options{.workers = 2, .batch = 8, .steal = false});
  LineChannel& hot = frontend.Connect(1);
  frontend.Connect(2);
  EXPECT_EQ(frontend.LaneOf(1), 0u);
  EXPECT_EQ(frontend.LaneOf(2), 1u);

  for (int i = 0; i < 6; ++i) {
    hot.ClientSend(Get("/index.html").Serialize());
  }
  LineChannel& late = frontend.Connect(3);
  late.ClientSend(Get("/index.html").Serialize());
  EXPECT_EQ(frontend.Pump(), 7u);
  // Client 3 bound during the pump's partition, when lane 0 already held
  // client 1's backlog and lane 1 was empty (client 2 sent nothing).
  EXPECT_EQ(frontend.LaneOf(3), 1u);
  EXPECT_EQ(frontend.LaneOf(1), 0u);
}

TEST(FrontendTest, PersistentExecutorStartsThreadsOnceNotPerPump) {
  Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                    Frontend::Options{.workers = 4, .batch = 2});
  // All lane threads exist from construction...
  EXPECT_EQ(frontend.executor_threads_started(), 4u);
  std::vector<LineChannel*> channels;
  for (uint64_t client = 1; client <= 4; ++client) {
    channels.push_back(&frontend.Connect(client));
  }
  // ...and five multi-lane pumps later the lifetime creation count has not
  // moved: steady-state pumps are zero-thread-churn.
  for (int pump = 0; pump < 5; ++pump) {
    for (LineChannel* channel : channels) {
      channel->ClientSend(Get("/index.html").Serialize());
    }
    EXPECT_EQ(frontend.Pump(), channels.size());
    EXPECT_EQ(frontend.executor_threads_started(), 4u);
  }
}

TEST(FrontendTest, LegacyDispatchForksPerPumpAndStartsNoExecutor) {
  Frontend frontend(
      ApacheFactory(AccessPolicy::kFailureOblivious),
      Frontend::Options{.workers = 3, .batch = 2, .legacy_dispatch = true});
  EXPECT_EQ(frontend.executor_threads_started(), 0u);
  for (uint64_t client = 1; client <= 3; ++client) {
    LineChannel& channel = frontend.Connect(client);
    channel.ClientSend(Get("/index.html").Serialize());
    channel.ClientSend(Get("/docs/flexc.html").Serialize());
    channel.ClientClose();
  }
  EXPECT_EQ(frontend.Run(), 6u);
  for (uint64_t client = 1; client <= 3; ++client) {
    for (const std::string& line : frontend.Connect(client).ClientReceiveAll()) {
      EXPECT_EQ(ServerResponse::Deserialize(line)->status, 200);
    }
  }
}

TEST(FrontendTest, ExecutorDrainsCleanlyOnDestruction) {
  // Construct, serve multi-lane rounds, destroy — repeatedly. The executor
  // must park, stop, and join all lane threads with no round in flight;
  // the tsan job keeps this honest.
  for (int round = 0; round < 3; ++round) {
    Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                      Frontend::Options{.workers = 4, .batch = 2});
    for (uint64_t client = 1; client <= 4; ++client) {
      LineChannel& channel = frontend.Connect(client);
      channel.ClientSend(Get("/index.html").Serialize());
      channel.ClientClose();
    }
    EXPECT_EQ(frontend.Run(), 4u);
  }
}

TEST(FrontendTest, StealingPreservesPerClientOrderingAndResponses) {
  // One hot client on lane 0, three idle lanes: the steal plan must move
  // whole batches to lanes 1-3 (the imbalance the sticky-only frontend
  // serializes), yet the client still reads its responses in exactly the
  // order it sent the requests, byte-identical to a sticky-only run.
  const std::vector<std::string> paths = {"/index.html", "/files/big.bin",
                                          "/docs/flexc.html"};
  auto run = [&](bool steal) {
    Frontend frontend(
        ApacheFactory(AccessPolicy::kFailureOblivious),
        Frontend::Options{.workers = 4, .batch = 2, .steal = steal});
    LineChannel& hot = frontend.Connect(1);
    for (int i = 0; i < 12; ++i) {
      hot.ClientSend(Get(paths[i % paths.size()]).Serialize());
    }
    hot.ClientClose();
    EXPECT_EQ(frontend.Run(), 12u);
    return std::make_pair(hot.ClientReceiveAll(), frontend.stats().stolen_batches);
  };

  auto [stolen_lines, stolen_count] = run(/*steal=*/true);
  auto [sticky_lines, sticky_count] = run(/*steal=*/false);
  EXPECT_GT(stolen_count, 0u);
  EXPECT_EQ(sticky_count, 0u);
  // Responses in submission order, with the right body per request...
  ASSERT_EQ(stolen_lines.size(), 12u);
  for (size_t i = 0; i < stolen_lines.size(); ++i) {
    auto response = ServerResponse::Deserialize(stolen_lines[i]);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    if (paths[i % paths.size()] == "/files/big.bin") {
      EXPECT_EQ(response->body.size(), 830 * 1024u);
    }
  }
  // ...and byte-identical to the sticky-only run: stealing changed which
  // shard served each batch, not what any client observed.
  EXPECT_EQ(stolen_lines, sticky_lines);
}

TEST(FrontendTest, SheddingPastTheWatermarkIsExplicitAndDeterministic) {
  auto run = [] {
    Frontend frontend(
        ApacheFactory(AccessPolicy::kFailureOblivious),
        Frontend::Options{.workers = 1, .batch = 2, .shed_watermark = 3});
    LineChannel& client = frontend.Connect(1);
    for (int i = 0; i < 5; ++i) {
      client.ClientSend(Get("/index.html").Serialize());
    }
    client.ClientClose();
    EXPECT_EQ(frontend.Run(), 5u);  // every request answered — 200 or 503
    EXPECT_EQ(frontend.stats().shed, 2u);
    EXPECT_EQ(frontend.stats().max_lane_depth, 3u);
    MemLog merged = frontend.MergedLog();
    EXPECT_EQ(merged.shed_requests(), 2u);
    EXPECT_EQ(merged.peak_lane_depth(), 3u);
    EXPECT_NE(merged.Summary().find("2 requests shed"), std::string::npos);
    return client.ClientReceiveAll();
  };

  std::vector<std::string> lines = run();
  ASSERT_EQ(lines.size(), 5u);
  // The first three (up to the watermark) served; the overflow answered
  // with the explicit overload status, never silently queued — and in
  // submission order, after the accepted requests' responses.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ServerResponse::Deserialize(lines[i])->status, 200);
  }
  for (size_t i = 3; i < 5; ++i) {
    auto response = ServerResponse::Deserialize(lines[i]);
    EXPECT_EQ(response->status, Frontend::kOverloadedStatus);
    EXPECT_NE(response->error.find("overloaded"), std::string::npos);
  }
  // Deterministic: an identical stream sheds identically.
  EXPECT_EQ(run(), lines);
}

TEST(FrontendTest, SheddingExemptsCrashRequeuedWork) {
  // Standard policy: the attack crashes the worker with two requests still
  // behind it in the batch. Those crash remainders re-queue onto the
  // replacement even though the lane is at its watermark — recovery work is
  // never shed; only the fresh over-watermark request is.
  Frontend frontend(
      ApacheFactory(AccessPolicy::kStandard),
      Frontend::Options{.workers = 1, .batch = 4, .shed_watermark = 3});
  LineChannel& client = frontend.Connect(1);
  client.ClientSend(Get(MakeApacheAttackUrl(), RequestTag::kAttack).Serialize());
  for (int i = 0; i < 3; ++i) {
    client.ClientSend(Get("/index.html").Serialize());
  }
  client.ClientClose();
  EXPECT_EQ(frontend.Run(), 4u);
  EXPECT_EQ(frontend.restarts(), 1u);
  EXPECT_EQ(frontend.stats().failed, 1u);
  EXPECT_EQ(frontend.stats().requeued, 2u);  // served by the replacement
  EXPECT_EQ(frontend.stats().shed, 1u);      // only the 4th, fresh, request

  std::vector<std::string> lines = client.ClientReceiveAll();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(ServerResponse::Deserialize(lines[0])->status, 500);  // the attack
  EXPECT_EQ(ServerResponse::Deserialize(lines[1])->status, 200);  // requeued
  EXPECT_EQ(ServerResponse::Deserialize(lines[2])->status, 200);  // requeued
  EXPECT_EQ(ServerResponse::Deserialize(lines[3])->status,
            Frontend::kOverloadedStatus);
}

TEST(FrontendTest, PerClientOrderingIsPreservedUnderParallelDispatch) {
  // Three clients fan out over distinct lanes and are served concurrently;
  // each client must still see its own responses in exactly the order it
  // sent the requests (distinguishable by body size / content).
  Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                    Frontend::Options{.workers = 3, .batch = 2});
  struct Want {
    uint64_t client;
    std::string path;
  };
  std::vector<Want> sends;
  for (int round = 0; round < 3; ++round) {
    sends.push_back({1, "/index.html"});
    sends.push_back({2, "/files/big.bin"});
    sends.push_back({3, "/docs/flexc.html"});
    sends.push_back({1, "/docs/flexc.html"});
  }
  for (const Want& want : sends) {
    frontend.Connect(want.client).ClientSend(Get(want.path).Serialize());
  }
  for (uint64_t client : {1u, 2u, 3u}) {
    frontend.Connect(client).ClientClose();
  }
  EXPECT_EQ(frontend.Run(), sends.size());

  std::map<uint64_t, std::vector<std::string>> received;
  for (uint64_t client : {1u, 2u, 3u}) {
    received[client] = frontend.Connect(client).ClientReceiveAll();
  }
  std::map<uint64_t, size_t> cursor;
  for (const Want& want : sends) {
    auto response = ServerResponse::Deserialize(received[want.client].at(cursor[want.client]++));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    if (want.path == "/files/big.bin") {
      EXPECT_EQ(response->body.size(), 830 * 1024u);
    } else if (want.path == "/docs/flexc.html") {
      EXPECT_NE(response->body.find("docs"), std::string::npos);
    } else {
      EXPECT_NE(response->body.find("research project"), std::string::npos);
    }
  }
}

TEST(FrontendTest, MalformedLineGetsAnErrorResponse) {
  Frontend frontend(ApacheFactory(AccessPolicy::kFailureOblivious),
                    Frontend::Options{.workers = 1, .batch = 2});
  LineChannel& client = frontend.Connect(1);
  client.ClientSend("not a request");
  client.ClientClose();
  EXPECT_EQ(frontend.Run(), 1u);
  EXPECT_EQ(frontend.stats().rejected, 1u);
  auto response = ServerResponse::Deserialize(client.ClientReceiveAll().at(0));
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok);
  EXPECT_NE(response->error.find("malformed"), std::string::npos);
}

}  // namespace
}  // namespace fob
