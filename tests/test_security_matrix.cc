// The paper's headline result as one parameterized matrix: every server ×
// every compilation, on the documented attack input (§4.2-§4.6).
//
//   Standard           -> crash (address space corruption)
//   Bounds Check       -> terminate (denial of service to legitimate users)
//   Failure Oblivious  -> continue, acceptable output, subsequent requests OK
//
// Plus §5.1: both variants (Boundless, Wrap) also execute acceptably. The
// search-space policies differentiate: Threshold (budget far above the §4
// error counts) continues everywhere, while Zero Manufacture hangs exactly
// the one server whose continuation depends on a nonzero manufactured value
// (Midnight Commander's '/'-seeking scan, §4.5) — the policy space is
// genuinely non-uniform, which is what the per-site sweep exploits.

#include "src/harness/experiment.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/runtime/policy.h"

namespace fob {
namespace {

class SecurityMatrixTest
    : public ::testing::TestWithParam<std::tuple<Server, AccessPolicy>> {};

std::string MatrixName(const ::testing::TestParamInfo<std::tuple<Server, AccessPolicy>>& info) {
  std::string server = ServerName(std::get<0>(info.param));
  std::string policy = PolicyName(std::get<1>(info.param));
  std::string name = server + "_" + policy;
  std::string cleaned;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cleaned.push_back(c);
    }
  }
  return cleaned;
}

INSTANTIATE_TEST_SUITE_P(AllServersAllPolicies, SecurityMatrixTest,
                         ::testing::Combine(::testing::ValuesIn(kAllServers),
                                            ::testing::ValuesIn(kAllPolicies)),
                         MatrixName);

TEST_P(SecurityMatrixTest, OutcomeMatchesPaper) {
  auto [server, policy] = GetParam();
  AttackReport report = RunAttackExperiment(server, policy);
  switch (policy) {
    case AccessPolicy::kStandard:
      EXPECT_EQ(report.outcome, Outcome::kCrashed) << report.detail;
      break;
    case AccessPolicy::kBoundsCheck:
      EXPECT_EQ(report.outcome, Outcome::kTerminated) << report.detail;
      break;
    case AccessPolicy::kFailureOblivious:
    case AccessPolicy::kBoundless:
    case AccessPolicy::kWrap:
    case AccessPolicy::kThreshold:
      EXPECT_EQ(report.outcome, Outcome::kContinued) << report.detail;
      EXPECT_TRUE(report.subsequent_requests_ok);
      EXPECT_GT(report.memory_errors_logged, 0u);
      break;
    case AccessPolicy::kZeroManufacture:
      if (server == Server::kMc) {
        // The tar symlink scan seeks a manufactured '/' that never arrives.
        EXPECT_EQ(report.outcome, Outcome::kHang) << report.detail;
        EXPECT_FALSE(report.subsequent_requests_ok);
      } else {
        EXPECT_EQ(report.outcome, Outcome::kContinued) << report.detail;
        EXPECT_TRUE(report.subsequent_requests_ok);
      }
      EXPECT_GT(report.memory_errors_logged, 0u);
      break;
  }
}

TEST_P(SecurityMatrixTest, OnlyStandardExposesCodeInjection) {
  auto [server, policy] = GetParam();
  AttackReport report = RunAttackExperiment(server, policy);
  if (policy != AccessPolicy::kStandard) {
    EXPECT_FALSE(report.possible_code_injection) << report.detail;
  }
}

TEST(SecurityMatrixSummaryTest, StandardStackAttacksAreInjectable) {
  // The two stack-smashing attacks (Apache, Sendmail) are the classic
  // code-injection setups under standard compilation.
  EXPECT_TRUE(RunAttackExperiment(Server::kApache, AccessPolicy::kStandard)
                  .possible_code_injection);
  EXPECT_TRUE(RunAttackExperiment(Server::kSendmail, AccessPolicy::kStandard)
                  .possible_code_injection);
}

}  // namespace
}  // namespace fob
