// The search-space sweep harness (src/harness/sweep.h): deterministic
// enumeration, end-to-end classification over a §4 server, and the
// headline property — at least one per-site assignment achieves acceptable
// continuation (kContinued + subsequent requests OK), and per-site
// assignments genuinely differ from uniform ones.

#include "src/harness/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fob {
namespace {

// ---- Enumeration ------------------------------------------------------------

TEST(SweepEnumerationTest, MixedRadixOrderIsExactAndDeterministic) {
  std::vector<AccessPolicy> candidates = {AccessPolicy::kFailureOblivious,
                                          AccessPolicy::kBoundsCheck};
  auto assignments = EnumerateAssignments(2, candidates, 100);
  ASSERT_EQ(assignments.size(), 4u);
  // Site 0 is the least-significant digit.
  using P = AccessPolicy;
  EXPECT_EQ(assignments[0], (std::vector<P>{P::kFailureOblivious, P::kFailureOblivious}));
  EXPECT_EQ(assignments[1], (std::vector<P>{P::kBoundsCheck, P::kFailureOblivious}));
  EXPECT_EQ(assignments[2], (std::vector<P>{P::kFailureOblivious, P::kBoundsCheck}));
  EXPECT_EQ(assignments[3], (std::vector<P>{P::kBoundsCheck, P::kBoundsCheck}));
  // Re-enumeration yields the identical order.
  EXPECT_EQ(assignments, EnumerateAssignments(2, candidates, 100));
}

TEST(SweepEnumerationTest, BoundTruncatesThePrefixOfTheSameOrder) {
  std::vector<AccessPolicy> candidates{kSweepCandidates.begin(), kSweepCandidates.end()};
  auto full = EnumerateAssignments(3, candidates, 1000);
  ASSERT_EQ(full.size(), 125u);
  auto bounded = EnumerateAssignments(3, candidates, 17);
  ASSERT_EQ(bounded.size(), 17u);
  for (size_t i = 0; i < bounded.size(); ++i) {
    EXPECT_EQ(bounded[i], full[i]) << "assignment " << i;
  }
}

TEST(SweepEnumerationTest, DegenerateInputs) {
  EXPECT_TRUE(EnumerateAssignments(0, {AccessPolicy::kWrap}, 10).empty());
  EXPECT_TRUE(EnumerateAssignments(3, {}, 10).empty());
}

// ---- End-to-end over a §4 server --------------------------------------------

TEST(SweepEndToEndTest, MuttSweepRanksAcceptableAssignmentsFirst) {
  SweepOptions options;
  options.candidates = {AccessPolicy::kFailureOblivious, AccessPolicy::kZeroManufacture,
                        AccessPolicy::kBoundsCheck};
  options.max_sites = 2;
  options.max_combinations = 16;
  SweepResult result = RunPolicySweep(Server::kMutt, options);

  // The baseline observed the utf7_buf overflow site.
  ASSERT_FALSE(result.sites.empty());
  EXPECT_EQ(result.sites[0].unit_name, "utf7_buf");
  EXPECT_TRUE(result.sites[0].is_write);

  // At least one assignment achieves acceptable continuation, and the
  // per-site kBoundsCheck assignment terminates — the policy choice at this
  // single site decides availability.
  ASSERT_FALSE(result.entries.empty());
  EXPECT_GT(result.acceptable_count(), 0u);
  bool saw_terminated = false;
  for (const SweepEntry& entry : result.entries) {
    if (entry.assignment[0] == AccessPolicy::kBoundsCheck) {
      EXPECT_EQ(entry.report.outcome, Outcome::kTerminated);
      saw_terminated = true;
    }
  }
  EXPECT_TRUE(saw_terminated);

  // Ranking: every acceptable entry precedes every unacceptable one.
  bool seen_unacceptable = false;
  for (const SweepEntry& entry : result.entries) {
    if (!entry.acceptable()) {
      seen_unacceptable = true;
    } else {
      EXPECT_FALSE(seen_unacceptable) << "acceptable entry ranked below an unacceptable one";
    }
  }

  // The table renders with one row per enumerated assignment.
  std::string table = result.ToTableString();
  EXPECT_NE(table.find("utf7_buf"), std::string::npos);
  EXPECT_NE(table.find("ACCEPTABLE"), std::string::npos);
}

TEST(SweepEndToEndTest, PineTwoSiteSweepFindsAcceptableMixedAssignment) {
  // Pine's attack exhibits two sites (the overflow writes and the read-back
  // of the truncated quote buffer); candidates without kBoundsCheck make
  // every combination survivable, so genuinely *mixed* acceptable
  // assignments must appear — the headline of the per-site API.
  SweepOptions options;
  options.candidates = {AccessPolicy::kFailureOblivious, AccessPolicy::kZeroManufacture};
  options.max_sites = 2;
  options.max_combinations = 8;
  SweepResult result = RunPolicySweep(Server::kPine, options);
  ASSERT_EQ(result.sites.size(), 2u);
  ASSERT_EQ(result.entries.size(), 4u);
  EXPECT_EQ(result.combinations_skipped, 0u);

  bool mixed_acceptable = false;
  for (const SweepEntry& entry : result.entries) {
    if (entry.mixed() && entry.acceptable()) {
      mixed_acceptable = true;
    }
  }
  EXPECT_TRUE(mixed_acceptable)
      << "no mixed per-site assignment achieved acceptable continuation";
}

// ---- Multi-attack streams ---------------------------------------------------

TEST(SweepMultiAttackTest, BestAssignmentDiffersBetweenSingleAndMultiAttackStreams) {
  // Durieux's point that per-site assignments interact with the workload,
  // pinned end to end: kThreshold continues through a bounded error burst
  // and terminates past Config::error_threshold (4096), so the *stream*
  // decides which assignment wins. The §4 single attack logs ~32 invalid
  // stores at the prescan site — every threshold assignment survives and
  // the all-threshold one ranks best (damage-bounding for free). The
  // multi-attack stream drives ~6000 stores through the same site: now any
  // assignment with threshold on the hot site terminates mid-stream, and
  // the best assignment moves threshold off it.
  SweepOptions options;
  options.candidates = {AccessPolicy::kThreshold, AccessPolicy::kFailureOblivious};
  options.max_sites = 2;
  options.max_combinations = 8;

  SweepResult single = RunPolicySweep(Server::kSendmail, options);

  SweepOptions multi_options = options;
  multi_options.stream = MakeMultiAttackStream(Server::kSendmail);
  SweepResult multi = RunPolicySweep(Server::kSendmail, multi_options);

  // Both baselines observe the same two sites, prescan's buffer first.
  ASSERT_EQ(single.sites.size(), 2u);
  ASSERT_EQ(multi.sites.size(), 2u);
  EXPECT_EQ(single.sites[0].site, multi.sites[0].site);
  EXPECT_NE(single.sites[0].unit_name.find("addr_buf"), std::string::npos);
  EXPECT_TRUE(single.sites[0].is_write);

  ASSERT_EQ(single.entries.size(), 4u);
  ASSERT_EQ(multi.entries.size(), 4u);

  // Single attack: everything survives; all-threshold ranks best.
  EXPECT_EQ(single.acceptable_count(), 4u);
  EXPECT_TRUE(single.entries[0].acceptable());
  EXPECT_EQ(single.entries[0].assignment[0], AccessPolicy::kThreshold);

  // Multi attack: threshold-on-hot-site assignments terminate...
  for (const SweepEntry& entry : multi.entries) {
    if (entry.assignment[0] == AccessPolicy::kThreshold) {
      EXPECT_EQ(entry.report.outcome, Outcome::kTerminated);
      EXPECT_FALSE(entry.acceptable());
    } else {
      EXPECT_EQ(entry.report.outcome, Outcome::kContinued);
      EXPECT_TRUE(entry.acceptable());
    }
  }
  // ...so the best multi-attack assignment differs from the single-attack
  // best: threshold moves off the hot site.
  EXPECT_TRUE(multi.entries[0].acceptable());
  EXPECT_EQ(multi.entries[0].assignment[0], AccessPolicy::kFailureOblivious);
  EXPECT_NE(multi.entries[0].assignment, single.entries[0].assignment);
}

// ---- Matrix expansion: the codec gateway flips the winning policy ----------

TEST(SweepMatrixExpansionTest, CodecBombBestAssignmentDiffersFromEveryPaperServer) {
  // For all five paper servers, uniform failure-obliviousness is an
  // acceptable assignment on the §4 attack — that is the paper's headline.
  // The codec gateway breaks the pattern: its bomb stream checks the reply
  // bytes, so discarding the overflow stores (FO truncates the conversion)
  // is wrong output, while Boundless materializes them and reproduces the
  // host codec exactly. Its best per-site assignment therefore maps its
  // overflow site to kBoundless — a policy choice no pre-existing server's
  // acceptable-by-FO row forces — over an error-site set disjoint from all
  // of theirs.
  SweepOptions options;
  options.candidates = {AccessPolicy::kFailureOblivious, AccessPolicy::kBoundless};
  options.max_sites = 2;
  options.max_combinations = 16;

  SweepOptions codec_options = options;
  codec_options.stream = MakeCodecBombStream();
  SweepResult codec = RunPolicySweep(Server::kCodec, codec_options);

  ASSERT_FALSE(codec.sites.empty());
  EXPECT_NE(codec.sites[0].unit_name.find("u8_out_buf"), std::string::npos);
  EXPECT_TRUE(codec.sites[0].is_write);

  ASSERT_FALSE(codec.entries.empty());
  EXPECT_GT(codec.acceptable_count(), 0u);
  // Best assignment: Boundless at the overflow site. And acceptability is
  // decided exactly there — every acceptable entry has it, every FO-at-the-
  // site entry continues with wrong output.
  EXPECT_TRUE(codec.entries[0].acceptable());
  EXPECT_EQ(codec.entries[0].assignment[0], AccessPolicy::kBoundless);
  for (const SweepEntry& entry : codec.entries) {
    if (entry.assignment[0] == AccessPolicy::kBoundless) {
      EXPECT_TRUE(entry.acceptable());
    } else {
      EXPECT_EQ(entry.report.outcome, Outcome::kWrongOutput);
      EXPECT_FALSE(entry.acceptable());
    }
  }

  std::set<SiteId> codec_sites;
  for (const MemSiteStat& stat : codec.sites) {
    codec_sites.insert(stat.site);
  }

  const Server paper_servers[] = {Server::kPine, Server::kApache, Server::kSendmail,
                                  Server::kMc, Server::kMutt};
  for (Server server : paper_servers) {
    SweepResult sweep = RunPolicySweep(server, options);
    ASSERT_FALSE(sweep.sites.empty()) << ServerName(server);
    // The uniform-FO assignment stays acceptable on every paper server.
    bool saw_all_fo = false;
    for (const SweepEntry& entry : sweep.entries) {
      bool all_fo = std::all_of(entry.assignment.begin(), entry.assignment.end(),
                                [](AccessPolicy p) { return p == AccessPolicy::kFailureOblivious; });
      if (all_fo) {
        saw_all_fo = true;
        EXPECT_TRUE(entry.acceptable())
            << ServerName(server) << ": uniform FO lost its §4 acceptability";
      }
    }
    EXPECT_TRUE(saw_all_fo) << ServerName(server);
    // The codec row's error sites are its own.
    for (const MemSiteStat& stat : sweep.sites) {
      EXPECT_EQ(codec_sites.count(stat.site), 0u)
          << ServerName(server) << " shares site " << stat.Label() << " with the codec gateway";
    }
  }
}

TEST(SweepEndToEndTest, UniformAssignmentReproducesTheUniformExperiment) {
  // The all-fallback assignment in the sweep must classify exactly like the
  // plain uniform experiment: per-site machinery with a uniform outcome is
  // still the paper's configuration.
  SweepOptions options;
  options.candidates = {AccessPolicy::kFailureOblivious};
  options.max_sites = 1;
  options.max_combinations = 2;
  SweepResult result = RunPolicySweep(Server::kApache, options);
  ASSERT_EQ(result.entries.size(), 1u);
  AttackReport uniform = RunAttackExperiment(Server::kApache, AccessPolicy::kFailureOblivious);
  EXPECT_EQ(result.entries[0].report.outcome, uniform.outcome);
  EXPECT_EQ(result.entries[0].report.subsequent_requests_ok, uniform.subsequent_requests_ok);
  EXPECT_EQ(result.entries[0].report.memory_errors_logged, uniform.memory_errors_logged);
}

}  // namespace
}  // namespace fob
