// Session-equivalence property: for every server and every policy, driving
// the §4 attack workload through the ServerApp adapter produces *identical*
// responses, memlog contents, and Outcome to the legacy direct calls the
// harness used to hard-code per server. This is what licenses the harness
// rewrite: the uniform session API is a pure re-plumbing of the same
// simulated-memory operation sequence, not a behavioral change.
//
// The "legacy" side below is a faithful copy of the per-server glue the old
// RunAttackExperiment carried (direct app-method calls in the §4 order);
// the "adapter" side drives MakeAttackServer with MakeAttackStream through
// ServerApp::Handle. Both snapshot outcome, acceptability, every response,
// and the full memory-error log.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/apps/apache.h"
#include "src/apps/archive_inbox.h"
#include "src/apps/codec_gateway.h"
#include "src/apps/mc.h"
#include "src/apps/mutt.h"
#include "src/apps/pine.h"
#include "src/apps/sendmail.h"
#include "src/codec/base64.h"
#include "src/codec/utf7.h"
#include "src/harness/experiment.h"
#include "src/harness/workloads.h"
#include "src/net/imap.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

constexpr uint64_t kHangBudget = 5'000'000;

struct RunSnapshot {
  Outcome outcome = Outcome::kWrongOutput;
  bool subsequent_ok = false;
  uint64_t total_errors = 0;
  std::vector<std::string> sites;      // "unit|function|rw|count", log order
  std::vector<std::string> recent;     // MemErrorRecord::ToString()
  std::vector<std::string> responses;  // one digest per §4 op, in order
};

std::string Digest(bool ok, const std::string& display, const std::string& error) {
  return std::string(ok ? "ok" : "err") + "|" + display + "|" + error;
}

std::string Join(const std::vector<std::string>& lines) {
  std::string joined;
  for (const std::string& line : lines) {
    joined += line;
    joined += '\n';
  }
  return joined;
}

void SnapshotLog(const MemLog* log, RunSnapshot& snap) {
  if (log == nullptr) {
    return;
  }
  snap.total_errors = log->total_errors();
  for (const auto& [site, stat] : log->sites()) {
    snap.sites.push_back(stat.unit_name + "|" + stat.function + "|" +
                         (stat.is_write ? "w" : "r") + "|" + std::to_string(stat.count));
  }
  for (const MemErrorRecord& record : log->recent()) {
    snap.recent.push_back(record.ToString());
  }
}

// ---- The legacy direct-call sequences (§4, one per server) ----------------

RunSnapshot LegacyPine(const PolicySpec& spec) {
  RunSnapshot snap;
  std::unique_ptr<PineApp> pine;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    pine = std::make_unique<PineApp>(spec, MakePineMbox(6, /*include_attack=*/true));
    pine->memory().set_access_budget(kHangBudget);
    snap.responses.push_back(Join(pine->IndexLines()));
    output_acceptable = pine->IndexLines().size() == 7;
    auto read = pine->ReadMessage(0);
    snap.responses.push_back(Digest(read.ok, read.display, read.error));
    auto compose = pine->Compose("friend0@example.org", "re: message 0", "thanks!\n");
    snap.responses.push_back(Digest(compose.ok, compose.display, compose.error));
    auto move = pine->MoveMessage(0, "saved");
    snap.responses.push_back(Digest(move.ok, move.display, move.error));
    subsequent_ok = read.ok && compose.ok && move.ok && pine->FolderSize("saved") == 1;
  });
  snap.outcome = ClassifyOutcome(result, output_acceptable);
  snap.subsequent_ok = result.ok() && subsequent_ok;
  SnapshotLog(pine != nullptr ? &pine->memory().log() : nullptr, snap);
  return snap;
}

RunSnapshot LegacyApache(const PolicySpec& spec) {
  RunSnapshot snap;
  Vfs docroot = MakeApacheDocroot();
  std::unique_ptr<ApacheApp> apache;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    apache = std::make_unique<ApacheApp>(spec, &docroot, ApacheApp::DefaultConfigText());
    apache->memory().set_access_budget(kHangBudget);
    HttpResponse attack = apache->Handle(MakeHttpGet(MakeApacheAttackUrl()));
    snap.responses.push_back(std::to_string(attack.status) + "|" + attack.body);
    output_acceptable = attack.status == 200 || attack.status == 404;
    HttpResponse legit = apache->Handle(MakeHttpGet("/index.html"));
    snap.responses.push_back(std::to_string(legit.status) + "|" + legit.body);
    subsequent_ok = legit.status == 200 && legit.body.size() > 4000;
  });
  snap.outcome = ClassifyOutcome(result, output_acceptable);
  snap.subsequent_ok = result.ok() && subsequent_ok;
  SnapshotLog(apache != nullptr ? &apache->memory().log() : nullptr, snap);
  return snap;
}

RunSnapshot LegacySendmail(const PolicySpec& spec) {
  RunSnapshot snap;
  std::unique_ptr<SendmailApp> sendmail;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    sendmail = std::make_unique<SendmailApp>(spec);
    sendmail->memory().set_access_budget(kHangBudget);
    auto attack_responses = sendmail->HandleSession(MakeSendmailAttackSession());
    snap.responses.push_back(Join(attack_responses));
    bool rejected = false;
    for (const std::string& response : attack_responses) {
      if (response.substr(0, 3) == "553") {
        rejected = true;
      }
    }
    output_acceptable = rejected && attack_responses.back().substr(0, 3) == "221";
    auto legit = sendmail->HandleSession(MakeSendmailSession("user@localhost", 64));
    snap.responses.push_back(Join(legit));
    subsequent_ok = sendmail->local_mailbox().size() == 1 &&
                    legit.back().substr(0, 3) == "221";
    sendmail->DaemonWakeup();
  });
  snap.outcome = ClassifyOutcome(result, output_acceptable);
  snap.subsequent_ok = result.ok() && subsequent_ok;
  SnapshotLog(sendmail != nullptr ? &sendmail->memory().log() : nullptr, snap);
  return snap;
}

RunSnapshot LegacyMc(const PolicySpec& spec) {
  RunSnapshot snap;
  std::unique_ptr<McApp> mc;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    mc = std::make_unique<McApp>(spec, McApp::DefaultConfigText(/*with_blank_lines=*/true));
    mc->memory().set_access_budget(kHangBudget);
    auto listing = mc->BrowseTgz(MakeMcAttackTgz());
    snap.responses.push_back(Digest(listing.ok, Join(listing.rows), listing.error));
    output_acceptable = listing.ok && listing.rows.size() == 6;
    snap.responses.push_back(
        std::to_string(MakeMcTree(mc->fs(), "/home/user/tree", 256 << 10)));
    bool copied = mc->Copy("/home/user/tree", "/home/user/tree2");
    snap.responses.push_back(Digest(copied, "", ""));
    bool made = mc->MkDir("/home/user/newdir");
    snap.responses.push_back(Digest(made, "", ""));
    bool moved = mc->Move("/home/user/tree2", "/home/user/tree3");
    snap.responses.push_back(Digest(moved, "", ""));
    bool deleted = mc->Delete("/home/user/tree3");
    snap.responses.push_back(Digest(deleted, "", ""));
    subsequent_ok = copied && made && moved && deleted;
  });
  snap.outcome = ClassifyOutcome(result, output_acceptable);
  snap.subsequent_ok = result.ok() && subsequent_ok;
  SnapshotLog(mc != nullptr ? &mc->memory().log() : nullptr, snap);
  return snap;
}

RunSnapshot LegacyMutt(const PolicySpec& spec) {
  RunSnapshot snap;
  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {MailMessage::Make("a@b", "me@here", "hello", "body\n"),
                               MailMessage::Make("c@d", "me@here", "again", "more\n")});
  imap.AddFolderUtf8("archive", {});
  std::unique_ptr<MuttApp> mutt;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    mutt = std::make_unique<MuttApp>(spec, &imap);
    mutt->memory().set_access_budget(kHangBudget);
    auto open = mutt->OpenFolder(MakeMuttAttackFolderName());
    snap.responses.push_back(Digest(open.ok, open.display, open.error));
    output_acceptable = !open.ok && open.error.find("does not exist") != std::string::npos;
    auto inbox = mutt->OpenFolder("INBOX");
    snap.responses.push_back(Digest(inbox.ok, inbox.display, inbox.error));
    auto read = mutt->ReadMessage("INBOX", 1);
    snap.responses.push_back(Digest(read.ok, read.display, read.error));
    auto move = mutt->MoveMessage("INBOX", 1, "archive");
    snap.responses.push_back(Digest(move.ok, move.display, move.error));
    subsequent_ok = inbox.ok && read.ok && move.ok;
  });
  snap.outcome = ClassifyOutcome(result, output_acceptable);
  snap.subsequent_ok = result.ok() && subsequent_ok;
  SnapshotLog(mutt != nullptr ? &mutt->memory().log() : nullptr, snap);
  return snap;
}

RunSnapshot LegacyArchive(const PolicySpec& spec) {
  RunSnapshot snap;
  std::unique_ptr<ArchiveInboxApp> inbox;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    inbox = std::make_unique<ArchiveInboxApp>(spec);
    inbox->memory().set_access_budget(kHangBudget);
    auto upload = inbox->Upload("drop0", MakeArchiveAttackTgz());
    snap.responses.push_back(Digest(upload.ok, upload.display, upload.error));
    output_acceptable = upload.ok && upload.files.size() == 3;
    auto list = inbox->List("drop0");
    snap.responses.push_back(Digest(list.ok, list.display, list.error));
    auto benign = inbox->Upload("drop1", MakeArchiveBenignTgz());
    snap.responses.push_back(Digest(benign.ok, benign.display, benign.error));
    auto extract = inbox->Extract("drop0", "pkg/readme.txt");
    snap.responses.push_back(Digest(extract.ok, extract.display, extract.error));
    auto drop = inbox->Drop("drop1");
    snap.responses.push_back(Digest(drop.ok, drop.display, drop.error));
    subsequent_ok = list.ok && list.files.size() == 3 && benign.ok &&
                    benign.files.size() == 2 && extract.ok && drop.ok;
  });
  snap.outcome = ClassifyOutcome(result, output_acceptable);
  snap.subsequent_ok = result.ok() && subsequent_ok;
  SnapshotLog(inbox != nullptr ? &inbox->memory().log() : nullptr, snap);
  return snap;
}

RunSnapshot LegacyCodec(const PolicySpec& spec) {
  RunSnapshot snap;
  std::unique_ptr<CodecGatewayApp> codec;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    codec = std::make_unique<CodecGatewayApp>(spec);
    codec->memory().set_access_budget(kHangBudget);
    auto bomb = codec->Transcode("u7to8", "utf7", MakeCodecBombUtf7());
    snap.responses.push_back(Digest(bomb.ok, bomb.output, bomb.error));
    output_acceptable = bomb.ok;
    auto hello = codec->Transcode("u7to8", "utf7", "Hello&AOk-!");
    snap.responses.push_back(Digest(hello.ok, hello.output, hello.error));
    auto enc = codec->Transcode("b64enc", "b64", "failure oblivious");
    snap.responses.push_back(Digest(enc.ok, enc.output, enc.error));
    auto back = codec->Transcode("u8to7", "utf8", MakeMuttBenignFolderName());
    snap.responses.push_back(Digest(back.ok, back.output, back.error));
    subsequent_ok = hello.ok && hello.output == *Utf7ToUtf8("Hello&AOk-!") && enc.ok &&
                    enc.output == Base64Encode("failure oblivious") && back.ok &&
                    back.output == *Utf8ToUtf7(MakeMuttBenignFolderName());
  });
  snap.outcome = ClassifyOutcome(result, output_acceptable);
  snap.subsequent_ok = result.ok() && subsequent_ok;
  SnapshotLog(codec != nullptr ? &codec->memory().log() : nullptr, snap);
  return snap;
}

RunSnapshot LegacyRun(Server server, const PolicySpec& spec) {
  switch (server) {
    case Server::kPine:
      return LegacyPine(spec);
    case Server::kApache:
      return LegacyApache(spec);
    case Server::kSendmail:
      return LegacySendmail(spec);
    case Server::kMc:
      return LegacyMc(spec);
    case Server::kMutt:
      return LegacyMutt(spec);
    case Server::kArchive:
      return LegacyArchive(spec);
    case Server::kCodec:
      return LegacyCodec(spec);
  }
  return {};
}

// ---- The adapter-driven run ------------------------------------------------

// Converts one ServerResponse to the digest the matching legacy op
// produced: index/session-style ops digest their lines, GETs their status +
// body, everything else (ok, display, error).
std::string ResponseDigest(Server server, const ServerRequest& request,
                           const ServerResponse& response) {
  if (request.op == "index" || request.op == "session") {
    return Join(response.lines);
  }
  if (request.op == "get") {
    return std::to_string(response.status) + "|" + response.body;
  }
  if (request.op == "browse") {
    return Digest(response.ok, Join(response.lines), response.error);
  }
  if (request.op == "mktree") {
    return response.body;
  }
  (void)server;
  return Digest(response.ok, response.body, response.error);
}

RunSnapshot AdapterRun(Server server, const PolicySpec& spec) {
  RunSnapshot snap;
  TrafficStream stream = MakeAttackStream(server);
  std::unique_ptr<ServerApp> app;
  bool output_acceptable = true;
  bool subsequent_ok = true;
  RunResult result = RunAsProcess([&] {
    app = MakeAttackServer(server, spec);
    app->memory().set_access_budget(kHangBudget);
    for (const ServerRequest& request : stream.requests) {
      ServerResponse response = app->Handle(request);
      if (request.op != "wakeup") {  // the legacy glue logged no wakeup output
        snap.responses.push_back(ResponseDigest(server, request, response));
      }
      if (request.tag == RequestTag::kAttack) {
        output_acceptable = output_acceptable && response.acceptable;
      } else if (request.tag == RequestTag::kLegit) {
        subsequent_ok = subsequent_ok && response.acceptable;
      }
    }
  });
  snap.outcome = ClassifyOutcome(result, output_acceptable);
  snap.subsequent_ok = result.ok() && subsequent_ok;
  SnapshotLog(app != nullptr ? &app->memory().log() : nullptr, snap);
  return snap;
}

// ---- The property ----------------------------------------------------------

class SessionEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Server, AccessPolicy>> {};

std::string ParamName(const ::testing::TestParamInfo<std::tuple<Server, AccessPolicy>>& info) {
  std::string name = std::string(ServerName(std::get<0>(info.param))) +
                     PolicyName(std::get<1>(info.param));
  std::string cleaned;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cleaned.push_back(c);
    }
  }
  return cleaned;
}

INSTANTIATE_TEST_SUITE_P(AllServersAllPolicies, SessionEquivalenceTest,
                         ::testing::Combine(::testing::ValuesIn(kAllServers),
                                            ::testing::ValuesIn(kAllPolicies)),
                         ParamName);

TEST_P(SessionEquivalenceTest, AdapterMatchesLegacyDirectCalls) {
  auto [server, policy] = GetParam();
  RunSnapshot legacy = LegacyRun(server, policy);
  RunSnapshot adapter = AdapterRun(server, policy);

  EXPECT_EQ(adapter.outcome, legacy.outcome)
      << OutcomeName(adapter.outcome) << " vs " << OutcomeName(legacy.outcome);
  EXPECT_EQ(adapter.subsequent_ok, legacy.subsequent_ok);
  // Memlog contents: total, per-site aggregation, and the bounded ring of
  // recent records — identical means the adapter performed the exact same
  // sequence of invalid accesses.
  EXPECT_EQ(adapter.total_errors, legacy.total_errors);
  EXPECT_EQ(adapter.sites, legacy.sites);
  EXPECT_EQ(adapter.recent, legacy.recent);
  // Every response the user-visible surface produced, byte for byte.
  EXPECT_EQ(adapter.responses, legacy.responses);
}

// The report-level API agrees with the legacy classification too.
TEST_P(SessionEquivalenceTest, ReportMatchesLegacyClassification) {
  auto [server, policy] = GetParam();
  RunSnapshot legacy = LegacyRun(server, policy);
  AttackReport report = RunAttackExperiment(server, policy);
  EXPECT_EQ(report.outcome, legacy.outcome);
  EXPECT_EQ(report.subsequent_requests_ok, legacy.subsequent_ok);
  EXPECT_EQ(report.memory_errors_logged, legacy.total_errors);
}

}  // namespace
}  // namespace fob
