#include "src/softmem/object_table.h"

#include <gtest/gtest.h>

#include "src/softmem/page_map.h"

namespace fob {
namespace {

TEST(ObjectTableTest, RegisterAndLookup) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 64, UnitKind::kHeap, "buf");
  ASSERT_NE(id, kInvalidUnit);
  const DataUnit* unit = table.Lookup(id);
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->base, 0x1000u);
  EXPECT_EQ(unit->size, 64u);
  EXPECT_EQ(unit->kind, UnitKind::kHeap);
  EXPECT_TRUE(unit->live);
  EXPECT_EQ(unit->name, "buf");
}

TEST(ObjectTableTest, LookupInvalidId) {
  ObjectTable table;
  EXPECT_EQ(table.Lookup(kInvalidUnit), nullptr);
  EXPECT_EQ(table.Lookup(999), nullptr);
}

TEST(ObjectTableTest, LookupByAddressFindsContainingUnit) {
  ObjectTable table;
  UnitId a = table.Register(0x1000, 64, UnitKind::kHeap, "a");
  UnitId b = table.Register(0x2000, 32, UnitKind::kStack, "b");
  EXPECT_EQ(table.LookupByAddress(0x1000)->id, a);
  EXPECT_EQ(table.LookupByAddress(0x103f)->id, a);
  EXPECT_EQ(table.LookupByAddress(0x1040), nullptr);  // one past the end
  EXPECT_EQ(table.LookupByAddress(0x2010)->id, b);
  EXPECT_EQ(table.LookupByAddress(0x0fff), nullptr);
  EXPECT_EQ(table.LookupByAddress(0x3000), nullptr);
}

TEST(ObjectTableTest, RetireRemovesFromAddressIndexButKeepsRecord) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 64, UnitKind::kHeap, "buf");
  table.Retire(id);
  EXPECT_EQ(table.LookupByAddress(0x1010), nullptr);
  const DataUnit* unit = table.Lookup(id);
  ASSERT_NE(unit, nullptr);
  EXPECT_FALSE(unit->live);
  EXPECT_EQ(unit->name, "buf");
}

TEST(ObjectTableTest, AddressReuseAfterRetire) {
  ObjectTable table;
  UnitId first = table.Register(0x1000, 64, UnitKind::kHeap, "first");
  table.Retire(first);
  UnitId second = table.Register(0x1000, 32, UnitKind::kHeap, "second");
  const DataUnit* found = table.LookupByAddress(0x1008);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, second);
}

TEST(ObjectTableTest, RetireIsIdempotent) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 64, UnitKind::kHeap, "buf");
  table.Retire(id);
  table.Retire(id);  // no crash, no effect
  EXPECT_EQ(table.live_count(), 0u);
  EXPECT_EQ(table.total_registered(), 1u);
}

TEST(ObjectTableTest, ZeroSizeUnit) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 0, UnitKind::kGlobal, "empty");
  const DataUnit* found = table.LookupByAddress(0x1000);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, id);
  EXPECT_EQ(table.LookupByAddress(0x1001), nullptr);
}

TEST(ObjectTableTest, ContainsRange) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 16, UnitKind::kHeap, "buf");
  const DataUnit* unit = table.Lookup(id);
  EXPECT_TRUE(unit->Contains(0x1000, 16));
  EXPECT_TRUE(unit->Contains(0x100f, 1));
  EXPECT_FALSE(unit->Contains(0x100f, 2));   // straddles the end
  EXPECT_FALSE(unit->Contains(0x1010, 1));   // one past
  EXPECT_FALSE(unit->Contains(0x0fff, 1));   // one before
  EXPECT_FALSE(unit->Contains(0x1000, 17));  // too big
}

TEST(ObjectTableTest, LiveCountTracksRegistrationAndRetirement) {
  ObjectTable table;
  UnitId a = table.Register(0x1000, 8, UnitKind::kHeap, "a");
  UnitId b = table.Register(0x2000, 8, UnitKind::kHeap, "b");
  EXPECT_EQ(table.live_count(), 2u);
  table.Retire(a);
  EXPECT_EQ(table.live_count(), 1u);
  table.Retire(b);
  EXPECT_EQ(table.live_count(), 0u);
  EXPECT_EQ(table.total_registered(), 2u);
}

TEST(ObjectTableTest, UnitKindNames) {
  EXPECT_STREQ(UnitKindName(UnitKind::kHeap), "heap");
  EXPECT_STREQ(UnitKindName(UnitKind::kStack), "stack");
  EXPECT_STREQ(UnitKindName(UnitKind::kGlobal), "global");
}

TEST(ObjectTableTest, FirstLiveOverlapFindsStraddlersAndInteriors) {
  ObjectTable table;
  UnitId a = table.Register(0x10F00, 0x200, UnitKind::kHeap, "straddler");  // crosses 0x11000
  UnitId b = table.Register(0x12080, 64, UnitKind::kHeap, "interior");
  // A unit that begins before the range but extends into it.
  EXPECT_EQ(table.FirstLiveOverlap(0x11000, 0x12000)->id, a);
  // A unit that begins inside the range.
  EXPECT_EQ(table.FirstLiveOverlap(0x12000, 0x13000)->id, b);
  EXPECT_EQ(table.FirstLiveOverlap(0x13000, 0x14000), nullptr);
  table.Retire(a);
  EXPECT_EQ(table.FirstLiveOverlap(0x11000, 0x12000), nullptr);
}

// ---- Page-map coherence through Register/Retire ---------------------------

TEST(ObjectTablePageMapTest, SoleOwnerAndMixedPages) {
  ObjectTable table;
  PageMap map;
  table.AttachPageMap(&map);
  UnitId big = table.Register(0x10000, 3 * kPageSize, UnitKind::kHeap, "big");
  // Every page of a page-multiple unit is sole-owned, interiors included.
  EXPECT_EQ(map.OwnerOf(0x10000), big);
  EXPECT_EQ(map.OwnerOf(0x11000 + 123), big);
  EXPECT_EQ(map.OwnerOf(0x12fff), big);
  EXPECT_EQ(map.OverlapCount(0x11000), 1u);
  // Two small units packed on one page make it mixed.
  UnitId a = table.Register(0x20000, 64, UnitKind::kHeap, "a");
  EXPECT_EQ(map.OwnerOf(0x20000), a);
  UnitId b = table.Register(0x20100, 64, UnitKind::kHeap, "b");
  (void)b;
  EXPECT_EQ(map.OwnerOf(0x20000), kInvalidUnit);
  EXPECT_EQ(map.OverlapCount(0x20000), 2u);
}

TEST(ObjectTablePageMapTest, RetireOfSoleOwnerClearsOwnership) {
  ObjectTable table;
  PageMap map;
  table.AttachPageMap(&map);
  UnitId id = table.Register(0x10000, kPageSize, UnitKind::kHeap, "buf");
  ASSERT_EQ(map.OwnerOf(0x10000), id);
  table.Retire(id);
  EXPECT_EQ(map.OwnerOf(0x10000), kInvalidUnit);
  EXPECT_EQ(map.OverlapCount(0x10000), 0u);
  // No data pointer and no live units: the record is gone entirely.
  EXPECT_EQ(map.entry_count(), 0u);
}

TEST(ObjectTablePageMapTest, RetireRefreshesPreviouslyMixedPage) {
  ObjectTable table;
  PageMap map;
  table.AttachPageMap(&map);
  UnitId a = table.Register(0x10000, 64, UnitKind::kHeap, "a");
  UnitId b = table.Register(0x10100, 64, UnitKind::kHeap, "b");
  UnitId c = table.Register(0x10200, 64, UnitKind::kHeap, "c");
  EXPECT_EQ(map.OwnerOf(0x10000), kInvalidUnit);  // mixed, 3 live
  table.Retire(a);
  EXPECT_EQ(map.OwnerOf(0x10000), kInvalidUnit);  // still mixed, 2 live
  table.Retire(c);
  // Dropping to exactly one live overlap refreshes the owner from the table.
  EXPECT_EQ(map.OwnerOf(0x10000), b);
  EXPECT_EQ(map.OverlapCount(0x10000), 1u);
}

TEST(ObjectTablePageMapTest, RegisterOverPreviouslyMixedPage) {
  ObjectTable table;
  PageMap map;
  table.AttachPageMap(&map);
  UnitId a = table.Register(0x10000, 64, UnitKind::kHeap, "a");
  UnitId b = table.Register(0x10100, 64, UnitKind::kHeap, "b");
  table.Retire(a);
  table.Retire(b);
  // The page's live set emptied; a fresh unit becomes its sole owner.
  UnitId c = table.Register(0x10040, 128, UnitKind::kHeap, "c");
  EXPECT_EQ(map.OwnerOf(0x10000), c);
  EXPECT_EQ(map.OverlapCount(0x10000), 1u);
}

TEST(ObjectTablePageMapTest, StraddlingUnitRefreshedAfterNeighbourRetires) {
  ObjectTable table;
  PageMap map;
  table.AttachPageMap(&map);
  // `wide` crosses into the second page, where it shares with `tail`.
  UnitId wide = table.Register(0x10800, kPageSize, UnitKind::kHeap, "wide");
  UnitId tail = table.Register(0x11900, 64, UnitKind::kHeap, "tail");
  EXPECT_EQ(map.OwnerOf(0x10800), wide);        // first page: sole
  EXPECT_EQ(map.OwnerOf(0x11000), kInvalidUnit);  // second page: mixed
  table.Retire(tail);
  // The refresh must find `wide` even though it begins on the prior page.
  EXPECT_EQ(map.OwnerOf(0x11000), wide);
}

TEST(ObjectTablePageMapTest, AttachPopulatesExistingLiveUnits) {
  ObjectTable table;
  UnitId a = table.Register(0x10000, kPageSize, UnitKind::kHeap, "a");
  UnitId dead = table.Register(0x20000, 64, UnitKind::kHeap, "dead");
  table.Retire(dead);
  PageMap map;
  table.AttachPageMap(&map);
  EXPECT_EQ(map.OwnerOf(0x10000), a);
  // Retired units are not resurrected by attach.
  EXPECT_EQ(map.OverlapCount(0x20000), 0u);
}

TEST(ObjectTablePageMapTest, ZeroSizeUnitSpansOneByte) {
  ObjectTable table;
  PageMap map;
  table.AttachPageMap(&map);
  UnitId id = table.Register(0x10000, 0, UnitKind::kGlobal, "empty");
  EXPECT_EQ(map.OwnerOf(0x10000), id);
  EXPECT_EQ(map.OverlapCount(0x10000), 1u);
  table.Retire(id);
  EXPECT_EQ(map.OverlapCount(0x10000), 0u);
}

}  // namespace
}  // namespace fob
