#include "src/softmem/object_table.h"

#include <gtest/gtest.h>

namespace fob {
namespace {

TEST(ObjectTableTest, RegisterAndLookup) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 64, UnitKind::kHeap, "buf");
  ASSERT_NE(id, kInvalidUnit);
  const DataUnit* unit = table.Lookup(id);
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->base, 0x1000u);
  EXPECT_EQ(unit->size, 64u);
  EXPECT_EQ(unit->kind, UnitKind::kHeap);
  EXPECT_TRUE(unit->live);
  EXPECT_EQ(unit->name, "buf");
}

TEST(ObjectTableTest, LookupInvalidId) {
  ObjectTable table;
  EXPECT_EQ(table.Lookup(kInvalidUnit), nullptr);
  EXPECT_EQ(table.Lookup(999), nullptr);
}

TEST(ObjectTableTest, LookupByAddressFindsContainingUnit) {
  ObjectTable table;
  UnitId a = table.Register(0x1000, 64, UnitKind::kHeap, "a");
  UnitId b = table.Register(0x2000, 32, UnitKind::kStack, "b");
  EXPECT_EQ(table.LookupByAddress(0x1000)->id, a);
  EXPECT_EQ(table.LookupByAddress(0x103f)->id, a);
  EXPECT_EQ(table.LookupByAddress(0x1040), nullptr);  // one past the end
  EXPECT_EQ(table.LookupByAddress(0x2010)->id, b);
  EXPECT_EQ(table.LookupByAddress(0x0fff), nullptr);
  EXPECT_EQ(table.LookupByAddress(0x3000), nullptr);
}

TEST(ObjectTableTest, RetireRemovesFromAddressIndexButKeepsRecord) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 64, UnitKind::kHeap, "buf");
  table.Retire(id);
  EXPECT_EQ(table.LookupByAddress(0x1010), nullptr);
  const DataUnit* unit = table.Lookup(id);
  ASSERT_NE(unit, nullptr);
  EXPECT_FALSE(unit->live);
  EXPECT_EQ(unit->name, "buf");
}

TEST(ObjectTableTest, AddressReuseAfterRetire) {
  ObjectTable table;
  UnitId first = table.Register(0x1000, 64, UnitKind::kHeap, "first");
  table.Retire(first);
  UnitId second = table.Register(0x1000, 32, UnitKind::kHeap, "second");
  const DataUnit* found = table.LookupByAddress(0x1008);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, second);
}

TEST(ObjectTableTest, RetireIsIdempotent) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 64, UnitKind::kHeap, "buf");
  table.Retire(id);
  table.Retire(id);  // no crash, no effect
  EXPECT_EQ(table.live_count(), 0u);
  EXPECT_EQ(table.total_registered(), 1u);
}

TEST(ObjectTableTest, ZeroSizeUnit) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 0, UnitKind::kGlobal, "empty");
  const DataUnit* found = table.LookupByAddress(0x1000);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, id);
  EXPECT_EQ(table.LookupByAddress(0x1001), nullptr);
}

TEST(ObjectTableTest, ContainsRange) {
  ObjectTable table;
  UnitId id = table.Register(0x1000, 16, UnitKind::kHeap, "buf");
  const DataUnit* unit = table.Lookup(id);
  EXPECT_TRUE(unit->Contains(0x1000, 16));
  EXPECT_TRUE(unit->Contains(0x100f, 1));
  EXPECT_FALSE(unit->Contains(0x100f, 2));   // straddles the end
  EXPECT_FALSE(unit->Contains(0x1010, 1));   // one past
  EXPECT_FALSE(unit->Contains(0x0fff, 1));   // one before
  EXPECT_FALSE(unit->Contains(0x1000, 17));  // too big
}

TEST(ObjectTableTest, LiveCountTracksRegistrationAndRetirement) {
  ObjectTable table;
  UnitId a = table.Register(0x1000, 8, UnitKind::kHeap, "a");
  UnitId b = table.Register(0x2000, 8, UnitKind::kHeap, "b");
  EXPECT_EQ(table.live_count(), 2u);
  table.Retire(a);
  EXPECT_EQ(table.live_count(), 1u);
  table.Retire(b);
  EXPECT_EQ(table.live_count(), 0u);
  EXPECT_EQ(table.total_registered(), 2u);
}

TEST(ObjectTableTest, UnitKindNames) {
  EXPECT_STREQ(UnitKindName(UnitKind::kHeap), "heap");
  EXPECT_STREQ(UnitKindName(UnitKind::kStack), "stack");
  EXPECT_STREQ(UnitKindName(UnitKind::kGlobal), "global");
}

}  // namespace
}  // namespace fob
