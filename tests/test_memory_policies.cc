// The policy matrix: each AccessPolicy's checking + continuation semantics.
//
// These tests pin down the core claims of §1.1/§3: under the failure-
// oblivious policy, invalid writes are discarded (no other data unit ever
// changes) and invalid reads return manufactured values; under bounds check
// the program terminates; under standard compilation the bytes physically
// land or the process segfaults.

#include "src/runtime/memory.h"

#include <gtest/gtest.h>

#include <string>

#include "src/runtime/process.h"
#include "src/softmem/fault.h"

namespace fob {
namespace {

class PolicyTest : public ::testing::TestWithParam<AccessPolicy> {
 protected:
  PolicyTest() : memory_(GetParam()) {}
  Memory memory_;
};

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest, ::testing::ValuesIn(kAllPolicies),
                         [](const ::testing::TestParamInfo<AccessPolicy>& info) {
                           switch (info.param) {
                             case AccessPolicy::kStandard:
                               return "Standard";
                             case AccessPolicy::kBoundsCheck:
                               return "BoundsCheck";
                             case AccessPolicy::kFailureOblivious:
                               return "FailureOblivious";
                             case AccessPolicy::kBoundless:
                               return "Boundless";
                             case AccessPolicy::kWrap:
                               return "Wrap";
                             case AccessPolicy::kZeroManufacture:
                               return "ZeroManufacture";
                             case AccessPolicy::kThreshold:
                               return "Threshold";
                           }
                           return "Unknown";
                         });

TEST_P(PolicyTest, InBoundsRoundTripWorksEverywhere) {
  Ptr p = memory_.Malloc(64, "buf");
  ASSERT_FALSE(p.IsNull());
  memory_.WriteU32(p, 0xcafef00d);
  EXPECT_EQ(memory_.ReadU32(p), 0xcafef00du);
  memory_.WriteU8(p + 63, 0x5a);
  EXPECT_EQ(memory_.ReadU8(p + 63), 0x5a);
}

TEST_P(PolicyTest, CStringBridging) {
  Ptr s = memory_.NewCString("hello world");
  EXPECT_EQ(memory_.ReadCString(s), "hello world");
}

TEST_P(PolicyTest, OutOfBoundsWriteNeverCorruptsNeighborUnderCheckedPolicies) {
  if (GetParam() == AccessPolicy::kStandard) {
    GTEST_SKIP() << "standard compilation corrupts by design";
  }
  Ptr a = memory_.Malloc(32, "a");
  Ptr b = memory_.Malloc(32, "b");
  memory_.WriteBytes(b, "BBBBBBBB");
  RunResult result = RunAsProcess([&] {
    // Overrun a by 64 bytes: crosses the gap and all of b.
    for (int i = 0; i < 96; ++i) {
      memory_.WriteU8(a + i, 'A');
    }
  });
  if (GetParam() == AccessPolicy::kBoundsCheck) {
    EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
  } else {
    EXPECT_TRUE(result.ok());
  }
  // b is intact under every checked policy (wrap redirects into *a*, not b).
  EXPECT_EQ(memory_.ReadBytesAsString(b, 8), "BBBBBBBB");
}

TEST_P(PolicyTest, StandardWritePhysicallyLands) {
  if (GetParam() != AccessPolicy::kStandard) {
    GTEST_SKIP();
  }
  Ptr a = memory_.Malloc(32, "a");
  Ptr b = memory_.Malloc(32, "b");
  int64_t delta = b - a;
  memory_.WriteU8(a + delta, 'X');  // out of bounds of a, lands on b
  EXPECT_EQ(memory_.ReadU8(b), 'X');
}

TEST_P(PolicyTest, UnmappedAccessSegfaultsOnlyStandard) {
  Ptr wild(0x500, kInvalidUnit);  // inside the null guard
  RunResult result = RunAsProcess([&] { memory_.WriteU8(wild, 1); });
  switch (GetParam()) {
    case AccessPolicy::kStandard:
      EXPECT_EQ(result.status, ExitStatus::kSegfault);
      break;
    case AccessPolicy::kBoundsCheck:
      EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
      break;
    default:
      EXPECT_TRUE(result.ok());
  }
}

TEST_P(PolicyTest, DanglingReadDoesNotCrashContinuingPolicies) {
  Ptr p = memory_.Malloc(16, "gone");
  memory_.Free(p);
  RunResult result = RunAsProcess([&] { (void)memory_.ReadU8(p); });
  switch (GetParam()) {
    case AccessPolicy::kStandard:
      // The heap page stays mapped, so the read succeeds silently.
      EXPECT_TRUE(result.ok());
      break;
    case AccessPolicy::kBoundsCheck:
      EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
      break;
    default:
      EXPECT_TRUE(result.ok());
  }
}

TEST_P(PolicyTest, ErrorLogRecordsInvalidAccesses) {
  if (GetParam() == AccessPolicy::kStandard) {
    GTEST_SKIP() << "no checks, no log";
  }
  Ptr p = memory_.Malloc(8, "logged");
  RunAsProcess([&] {
    memory_.WriteU8(p + 8, 1);
    (void)memory_.ReadU8(p + 9);
  });
  EXPECT_GE(memory_.log().total_errors(), 1u);
  EXPECT_EQ(memory_.log().recent().front().unit_name, "logged");
}

using FailureObliviousTest = ::testing::Test;

TEST(FailureObliviousSemanticsTest, DiscardedWritePreservesOwnUnitContents) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr p = m.Malloc(4, "tiny");
  m.WriteBytes(p, "abcd");
  m.WriteU8(p + 4, 'X');  // discarded
  EXPECT_EQ(m.ReadBytesAsString(p, 4), "abcd");
  EXPECT_EQ(m.log().write_errors(), 1u);
}

TEST(FailureObliviousSemanticsTest, ManufacturedReadsFollowPaperSequence) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr p = m.Malloc(4, "tiny");
  // OOB reads see 0, 1, 2, 0, 1, 3, ...
  EXPECT_EQ(m.ReadU8(p + 100), 0);
  EXPECT_EQ(m.ReadU8(p + 100), 1);
  EXPECT_EQ(m.ReadU8(p + 100), 2);
  EXPECT_EQ(m.ReadU8(p + 100), 0);
  EXPECT_EQ(m.ReadU8(p + 100), 1);
  EXPECT_EQ(m.ReadU8(p + 100), 3);
}

TEST(FailureObliviousSemanticsTest, ValueSeekingLoopTerminates) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr p = m.Malloc(4, "tiny");
  m.set_access_budget(100000);
  // The Midnight Commander pattern: scan for '/' beyond the buffer.
  Ptr cursor = p + 4;
  int steps = 0;
  while (m.ReadU8(cursor) != '/') {
    ++cursor;
    ++steps;
  }
  // '/' is 47: phase pattern yields it within 3*46 manufactured reads.
  EXPECT_LE(steps, 3 * 46);
}

TEST(FailureObliviousSemanticsTest, ZeroSequenceHangsValueSeekingLoop) {
  Memory::Config config;
  config.policy = AccessPolicy::kFailureOblivious;
  config.sequence = SequenceKind::kZeros;
  config.access_budget = 10000;
  Memory m(config);
  Ptr p = m.Malloc(4, "tiny");
  RunResult result = RunAsProcess([&] {
    Ptr cursor = p + 4;
    while (m.ReadU8(cursor) != '/') {
      ++cursor;
    }
  });
  EXPECT_EQ(result.status, ExitStatus::kBudgetExhausted);
}

TEST(FailureObliviousSemanticsTest, ReadCStringBeyondBufferTerminates) {
  Memory m(AccessPolicy::kFailureOblivious);
  // The Mutt situation: a buffer with no NUL anywhere; reads beyond the end
  // eventually return the manufactured 0 (§4.6.2 "reads beyond the end of
  // the buffer will eventually return null").
  Ptr p = m.Malloc(4, "name");
  m.WriteBytes(p, "abcd");
  std::string s = m.ReadCString(p);
  EXPECT_EQ(s.substr(0, 4), "abcd");
  EXPECT_LE(s.size(), 4 + 3u);  // 0 arrives within three manufactured values
}

TEST(BoundlessSemanticsTest, OutOfBoundsWritesAreReadableBack) {
  Memory m(AccessPolicy::kBoundless);
  Ptr p = m.Malloc(4, "small");
  m.WriteBytes(p, "abcd");
  m.WriteU8(p + 4, 'e');
  m.WriteU8(p + 5, 'f');
  EXPECT_EQ(m.ReadU8(p + 4), 'e');
  EXPECT_EQ(m.ReadU8(p + 5), 'f');
  // In-bounds part unaffected.
  EXPECT_EQ(m.ReadBytesAsString(p, 4), "abcd");
}

TEST(BoundlessSemanticsTest, NegativeOffsetsStoreToo) {
  Memory m(AccessPolicy::kBoundless);
  Ptr p = m.Malloc(4, "small");
  m.WriteU8(p - 1, 'z');
  EXPECT_EQ(m.ReadU8(p - 1), 'z');
}

TEST(BoundlessSemanticsTest, UnstoredReadsManufactureValues) {
  Memory m(AccessPolicy::kBoundless);
  Ptr p = m.Malloc(4, "small");
  EXPECT_EQ(m.ReadU8(p + 100), 0);  // first manufactured value
  EXPECT_EQ(m.ReadU8(p + 100), 1);
}

TEST(BoundlessSemanticsTest, FreeDropsStoredBytes) {
  Memory m(AccessPolicy::kBoundless);
  Ptr p = m.Malloc(4, "small");
  m.WriteU8(p + 10, 'q');
  m.Free(p);
  Ptr q = m.Malloc(4, "recycled");
  // Even if the allocator reuses the address, the stale overflow byte is
  // not visible to the new block.
  EXPECT_EQ(q.addr, p.addr);
  uint8_t v = m.ReadU8(q + 10);
  EXPECT_NE(v, 'q');
}

TEST(WrapSemanticsTest, AccessesWrapModuloUnitSize) {
  Memory m(AccessPolicy::kWrap);
  Ptr p = m.Malloc(8, "ring");
  m.WriteBytes(p, "01234567");
  m.WriteU8(p + 9, 'X');  // wraps to offset 1
  EXPECT_EQ(m.ReadU8(p + 1), 'X');
  EXPECT_EQ(m.ReadU8(p + 9), 'X');  // read wraps the same way
  m.WriteU8(p - 3, 'Y');            // negative offset wraps to size-3
  EXPECT_EQ(m.ReadU8(p + 5), 'Y');
}

TEST(StandardSemanticsTest, HeapOverrunCrashesAtFree) {
  Memory m(AccessPolicy::kStandard);
  Ptr a = m.Malloc(32, "a");
  RunResult result = RunAsProcess([&] {
    for (int i = 0; i < 64; ++i) {
      m.WriteU8(a + i, 'A');  // physically stomps footer + next header
    }
    m.Free(a);
  });
  EXPECT_EQ(result.status, ExitStatus::kHeapCorruption);
}

TEST(StandardSemanticsTest, StackOverrunCrashesAtReturn) {
  Memory m(AccessPolicy::kStandard);
  RunResult result = RunAsProcess([&] {
    Memory::Frame frame(m, "vulnerable");
    Ptr buf = frame.Local(16, "buf");
    for (int i = 0; i < 64; ++i) {
      m.WriteU8(buf + i, 'A');
    }
  });
  EXPECT_EQ(result.status, ExitStatus::kStackSmash);
  EXPECT_TRUE(result.possible_code_injection);
}

TEST(FrameTest, LocalAllocationAndCleanup) {
  Memory m(AccessPolicy::kFailureOblivious);
  {
    Memory::Frame frame(m, "f");
    Ptr local = frame.Local(32, "buf");
    m.WriteU8(local, 1);
    EXPECT_EQ(m.Classify(local, 32), PointerStatus::kInBounds);
  }
  EXPECT_EQ(m.stack().depth(), 0u);
}

TEST(FrameTest, AccessAfterFrameExitIsDangling) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr local;
  {
    Memory::Frame frame(m, "f");
    local = frame.Local(32, "buf");
  }
  EXPECT_EQ(m.Classify(local), PointerStatus::kDangling);
  // Continuing policy: read manufactures, no crash.
  RunResult result = RunAsProcess([&] { (void)m.ReadU8(local); });
  EXPECT_TRUE(result.ok());
}

TEST(GlobalsTest, GlobalAllocationPersists) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr g = m.AllocGlobal(128, "config");
  ASSERT_FALSE(g.IsNull());
  m.WriteBytes(g, "persistent");
  EXPECT_EQ(m.ReadBytesAsString(g, 10), "persistent");
  EXPECT_EQ(m.objects().Lookup(g.unit)->kind, UnitKind::kGlobal);
}

TEST(GlobalsTest, GlobalRegionExhaustion) {
  Memory::Config config;
  config.global_bytes = 4096;
  Memory m(config);
  Ptr a = m.AllocGlobal(4000, "big");
  EXPECT_FALSE(a.IsNull());
  Ptr b = m.AllocGlobal(4000, "too much");
  EXPECT_TRUE(b.IsNull());
}

TEST(FreeSemanticsTest, FreeNullIsNoOpEverywhere) {
  for (AccessPolicy policy : kAllPolicies) {
    Memory m(policy);
    EXPECT_NO_THROW(m.Free(kNullPtr)) << PolicyName(policy);
  }
}

TEST(FreeSemanticsTest, DoubleFreeContinuesUnderFailureOblivious) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr p = m.Malloc(16, "buf");
  m.Free(p);
  RunResult result = RunAsProcess([&] { m.Free(p); });
  EXPECT_TRUE(result.ok());
  EXPECT_GE(m.log().total_errors(), 1u);
}

TEST(FreeSemanticsTest, DoubleFreeCrashesUnderStandard) {
  Memory m(AccessPolicy::kStandard);
  Ptr p = m.Malloc(16, "buf");
  m.Free(p);
  RunResult result = RunAsProcess([&] { m.Free(p); });
  EXPECT_EQ(result.status, ExitStatus::kHeapCorruption);
}

TEST(ReallocTest, ReallocNullActsAsMalloc) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr p = m.Realloc(kNullPtr, 32);
  ASSERT_FALSE(p.IsNull());
  m.WriteU8(p, 1);
}

TEST(ReallocTest, ReallocPreservesData) {
  Memory m(AccessPolicy::kFailureOblivious);
  Ptr p = m.NewBytes("0123456789", "buf");
  Ptr q = m.Realloc(p, 100);
  EXPECT_EQ(m.ReadBytesAsString(q, 10), "0123456789");
}

TEST(AccessBudgetTest, BudgetFaultsWhenExceeded) {
  Memory::Config config;
  config.access_budget = 100;
  Memory m(config);
  Ptr p = m.Malloc(8, "buf");
  RunResult result = RunAsProcess([&] {
    for (int i = 0; i < 1000; ++i) {
      m.WriteU8(p, 1);
    }
  });
  EXPECT_EQ(result.status, ExitStatus::kBudgetExhausted);
}

TEST(PtrTest, ArithmeticKeepsReferent) {
  Ptr p(0x1000, 7);
  Ptr q = p + 100;
  EXPECT_EQ(q.unit, 7u);
  EXPECT_EQ(q.addr, 0x1064u);
  EXPECT_EQ(q - p, 100);
  q -= 100;
  EXPECT_EQ(q, p);
}

TEST(PtrTest, ComparisonUsesAddressOnly) {
  // §4.1: inequality comparisons involving out-of-bounds pointers behave
  // like raw pointer comparisons.
  Ptr a(0x1000, 1);
  Ptr oob(0x1040, 1);  // out of bounds of unit 1
  Ptr other(0x1040, 2);
  EXPECT_LT(a, oob);
  EXPECT_EQ(oob, other);
  EXPECT_TRUE(a < oob);
}

}  // namespace
}  // namespace fob
