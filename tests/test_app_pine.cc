// mini-Pine under the five policies (§4.2).

#include "src/apps/pine.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

TEST(PineQuoteTest, BenignFromQuotedCorrectly) {
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(0, false));
  EXPECT_EQ(pine.QuoteFromVulnerable("alice@example.org"), "alice@example.org");
  EXPECT_EQ(pine.QuoteFromVulnerable("\"bob\" <b@c>"), "\\\"bob\\\" <b@c>");
}

TEST(PineQuoteTest, QuotingDoublesBackslashes) {
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(0, false));
  // Two quotable chars: estimate = 4 + 1 + 1 = 6 >= needed 7? The estimate
  // undersizes only when quotable count is large enough; small inputs pass.
  EXPECT_EQ(pine.QuoteFromVulnerable("a\\b"), "a\\\\b");
}

TEST(PineStartupTest, LegitimateMailboxLoadsEverywhere) {
  for (AccessPolicy policy : kAllPolicies) {
    PineApp pine(policy, MakePineMbox(5, /*include_attack=*/false));
    EXPECT_EQ(pine.IndexLines().size(), 5u) << PolicyName(policy);
    EXPECT_EQ(pine.memory().log().total_errors(), 0u) << PolicyName(policy);
  }
}

TEST(PineAttackTest, StandardCrashesDuringStartup) {
  std::unique_ptr<PineApp> pine;
  RunResult result = RunAsProcess(
      [&] { pine = std::make_unique<PineApp>(AccessPolicy::kStandard, MakePineMbox(4, true)); });
  EXPECT_EQ(result.status, ExitStatus::kHeapCorruption);
  // "the user is unable to use Pine to read mail ... during initialization"
}

TEST(PineAttackTest, BoundsCheckTerminatesDuringStartup) {
  std::unique_ptr<PineApp> pine;
  RunResult result = RunAsProcess([&] {
    pine = std::make_unique<PineApp>(AccessPolicy::kBoundsCheck, MakePineMbox(4, true));
  });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST(PineAttackTest, RestartingDoesNotHelpStandard) {
  // §4.7: the attack message persists in the mailbox, so a restart dies the
  // same way.
  std::string mbox = MakePineMbox(4, true);
  for (int attempt = 0; attempt < 3; ++attempt) {
    RunResult result = RunAsProcess(
        [&] { PineApp pine(AccessPolicy::kStandard, mbox); });
    EXPECT_TRUE(result.crashed()) << "attempt " << attempt;
  }
}

TEST(PineAttackTest, FailureObliviousLoadsAndTruncatesInvisibly) {
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(4, true));
  ASSERT_EQ(pine.IndexLines().size(), 5u);
  // The From column is capped at the index width, so the truncation is not
  // visible as such.
  for (const std::string& line : pine.IndexLines()) {
    EXPECT_LE(line.size(), 120u);
  }
  EXPECT_GT(pine.memory().log().write_errors(), 0u);
}

TEST(PineAttackTest, SelectingAttackMessageShowsFullFrom) {
  // §4.2.2: "a different execution path correctly translates the From
  // field" when the message is selected.
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(4, true));
  // The attack message was inserted mid-mailbox (index 2 of 0..4).
  auto read = pine.ReadMessage(2);
  ASSERT_TRUE(read.ok);
  // The pager line-wraps at 80 columns; compare against the unwrapped text.
  std::string unwrapped;
  for (char c : read.display) {
    if (c != '\n') {
      unwrapped.push_back(c);
    }
  }
  std::string from = MakePineAttackFrom();
  EXPECT_NE(unwrapped.find(from), std::string::npos);
}

TEST(PineAttackTest, SubsequentRequestsWorkAfterError) {
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(4, true));
  EXPECT_TRUE(pine.ReadMessage(0).ok);
  EXPECT_TRUE(pine.Compose("x@y", "subject", "body\n").ok);
  EXPECT_TRUE(pine.MoveMessage(0, "saved").ok);
  EXPECT_EQ(pine.FolderSize("saved"), 1u);
  EXPECT_EQ(pine.MessageCount(), 4u);
}

TEST(PineRequestTest, ReadComposeMoveAcrossPolicies) {
  for (AccessPolicy policy : {AccessPolicy::kStandard, AccessPolicy::kFailureOblivious}) {
    PineApp pine(policy, MakePineMbox(3, false));
    auto read = pine.ReadMessage(1);
    EXPECT_TRUE(read.ok) << PolicyName(policy);
    EXPECT_NE(read.display.find("friend1@example.org"), std::string::npos);
    EXPECT_TRUE(pine.Compose("a@b", "s", "b\n").ok) << PolicyName(policy);
    EXPECT_TRUE(pine.MoveMessage(0, "sent").ok) << PolicyName(policy);
    EXPECT_FALSE(pine.MoveMessage(99, "sent").ok);
    EXPECT_FALSE(pine.MoveMessage(0, "nonexistent").ok);
  }
}

TEST(PineStabilityTest, RepeatedAttackMessagesKeepWorking) {
  // §4.2.4: "we periodically sent an email that triggered the memory
  // error... executed successfully through all errors".
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(2, true));
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(pine.ReadMessage(0).ok);
    // Each index rebuild re-triggers the quoting error via MoveMessage.
    EXPECT_TRUE(pine.Compose("x@y", "s", "b\n").ok);
  }
  EXPECT_GT(pine.memory().log().total_errors(), 0u);
}

}  // namespace
}  // namespace fob
