// Online context-aware policy learning (src/runtime/adaptive.h +
// RunAdaptiveExperiment): the controller's bandit mechanics at unit level,
// the live-respec plumbing it rides on, and the two headline end-to-end
// properties —
//
//   determinism   same stream + seed + worker count ⇒ identical learned
//                 PolicySpec and identical convergence trace;
//   learning      the learned MC assignment achieves acceptable continuation
//                 with far fewer logged errors than uniform failure-
//                 oblivious serving (the Rigger-style online selection
//                 approaching the Durieux-style offline sweep's winner).

#include "src/runtime/adaptive.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/sweep.h"
#include "src/net/frontend.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

// Builds a MemLog carrying `count` errors at one synthetic site.
MemLog LogWithSite(const std::string& unit, const std::string& function, bool is_write,
                   uint64_t count) {
  MemLog log;
  for (uint64_t i = 0; i < count; ++i) {
    MemErrorRecord record;
    record.is_write = is_write;
    record.unit_name = unit;
    record.function = function;
    record.site = MakeSiteId(unit, function, is_write ? AccessKind::kWrite : AccessKind::kRead);
    log.Record(std::move(record));
  }
  return log;
}

// ---- Controller mechanics ---------------------------------------------------

TEST(AdaptiveControllerTest, RegistersSitesInAscendingShardOrderAndTracksDeltas) {
  AdaptivePolicyController controller;
  MemLog shard0 = LogWithSite("buf", "parse", /*is_write=*/true, 5);
  MemLog shard1 = LogWithSite("idx", "render", /*is_write=*/false, 3);
  controller.ObserveShardLog(0, shard0);
  controller.ObserveShardLog(1, shard1);
  ASSERT_EQ(controller.sites().size(), 2u);
  EXPECT_EQ(controller.sites()[0].unit_name, "buf");
  EXPECT_EQ(controller.sites()[1].unit_name, "idx");
  EXPECT_EQ(controller.sites()[0].epoch_errors, 5u);

  controller.EndEpoch(EpochVerdict{});

  // Cumulative logs are differenced: re-observing the same totals adds no
  // new epoch errors; growth adds exactly the delta.
  controller.ObserveShardLog(0, shard0);
  EXPECT_EQ(controller.sites()[0].epoch_errors, 0u);
  MemLog grown = LogWithSite("buf", "parse", /*is_write=*/true, 9);
  controller.ObserveShardLog(0, grown);
  EXPECT_EQ(controller.sites()[0].epoch_errors, 4u);
  // A shrunken count means the shard restarted with a fresh log: all new.
  MemLog fresh = LogWithSite("buf", "parse", /*is_write=*/true, 2);
  controller.ObserveShardLog(0, fresh);
  EXPECT_EQ(controller.sites()[0].epoch_errors, 6u);
}

TEST(AdaptiveControllerTest, IncarnationChangeResetsTheDeltaBaseline) {
  // A replacement that re-accumulates *past* the dead worker's count would
  // fool the shrunken-count heuristic; the incarnation counter must reset
  // the baseline so the fresh log is read in full.
  AdaptivePolicyController controller;
  controller.ObserveShardLog(0, LogWithSite("buf", "parse", true, 10), /*incarnation=*/1);
  controller.EndEpoch(EpochVerdict{});
  // Same incarnation: cumulative difference. New incarnation: all new.
  controller.ObserveShardLog(0, LogWithSite("buf", "parse", true, 12), /*incarnation=*/2);
  EXPECT_EQ(controller.sites()[0].epoch_errors, 12u);
}

TEST(AdaptiveControllerTest, EpochZeroSeedsThePriorArmOfEverySite) {
  AdaptivePolicyController::Options options;
  options.prior = AccessPolicy::kFailureOblivious;
  AdaptivePolicyController controller(options);
  controller.ObserveShardLog(0, LogWithSite("a", "f", true, 10));
  controller.ObserveShardLog(0, LogWithSite("b", "g", false, 2));
  uint64_t errors = controller.EndEpoch(EpochVerdict{});
  EXPECT_EQ(errors, 12u);
  for (const AdaptiveSiteState& site : controller.sites()) {
    uint64_t pulled = 0;
    for (const AdaptiveArm& arm : site.arms) {
      pulled += arm.pulls;
      if (arm.policy == options.prior) {
        EXPECT_EQ(arm.pulls, 1u);
        EXPECT_LT(arm.total_reward, 0.0);  // -errors
      }
    }
    EXPECT_EQ(pulled, 1u) << "only the prior arm ran in epoch 0";
  }
}

TEST(AdaptiveControllerTest, CrashRetiresTerminateArmsAtTheResponsibleSite) {
  AdaptivePolicyController::Options options;
  options.candidates = {AccessPolicy::kFailureOblivious, AccessPolicy::kThreshold,
                        AccessPolicy::kBoundsCheck};
  AdaptivePolicyController controller(options);
  controller.ObserveShardLog(0, LogWithSite("hot", "serve", true, 100));
  controller.EndEpoch(EpochVerdict{});

  // The focus site now covers its untried arms; drive epochs until it holds
  // a terminate-capable arm, then report a crashed epoch.
  bool crashed_once = false;
  for (int epoch = 0; epoch < 8 && !crashed_once; ++epoch) {
    const AdaptiveSiteState& site = controller.sites()[0];
    EpochVerdict verdict;
    if (PolicyTerminates(site.current)) {
      verdict.restarts = 1;
      verdict.legit_ok = false;
      crashed_once = true;
    }
    controller.ObserveShardLog(0, MemLog());
    controller.EndEpoch(verdict);
  }
  ASSERT_TRUE(crashed_once);
  const AdaptiveSiteState& site = controller.sites()[0];
  EXPECT_TRUE(site.crash_tainted);
  for (const AdaptiveArm& arm : site.arms) {
    EXPECT_EQ(arm.disabled, PolicyTerminates(arm.policy)) << PolicyName(arm.policy);
  }
  // The retired arms are never selected again.
  for (int epoch = 0; epoch < 20; ++epoch) {
    controller.ObserveShardLog(0, MemLog());
    controller.EndEpoch(EpochVerdict{});
    EXPECT_FALSE(PolicyTerminates(controller.sites()[0].current));
  }
}

TEST(AdaptiveControllerTest, StandingTerminateArmAtNonFocusSiteIsBlamedAndRetired) {
  // A kThreshold arm can crash a worker in an epoch where its site is NOT
  // the focus (the handler's error counter persists across rebinds): the
  // rail must retire terminate arms at every culprit site, focus or not,
  // and innocent continuing arms must not absorb the crash penalty.
  AdaptivePolicyController::Options options;
  options.candidates = {AccessPolicy::kFailureOblivious, AccessPolicy::kThreshold};
  options.epsilon = 0.0;
  AdaptivePolicyController controller(options);

  // Epoch 0: two sites discovered under the prior.
  controller.ObserveShardLog(0, LogWithSite("a", "f", true, 5));
  controller.ObserveShardLog(0, LogWithSite("b", "g", true, 100));
  controller.EndEpoch(EpochVerdict{});
  ASSERT_EQ(controller.focus_site(), 0u);
  ASSERT_EQ(controller.sites()[0].current, AccessPolicy::kThreshold);  // untried first

  // Epoch 1: site a's threshold pull looks great (1 error), so it becomes
  // a's standing best; focus moves to site b.
  controller.ObserveShardLog(0, LogWithSite("a", "f", true, 6));
  controller.EndEpoch(EpochVerdict{});
  ASSERT_EQ(controller.focus_site(), 1u);
  ASSERT_EQ(controller.sites()[0].current, AccessPolicy::kThreshold);  // standing, non-focus

  // Epoch 2: a worker is lost. Site a holds a terminate-capable arm while
  // not being the focus — it is a culprit and must be retired.
  EpochVerdict crash;
  crash.restarts = 1;
  crash.legit_ok = false;
  controller.EndEpoch(crash);

  const AdaptiveSiteState& a = controller.sites()[0];
  EXPECT_TRUE(a.crash_tainted);
  for (const AdaptiveArm& arm : a.arms) {
    EXPECT_EQ(arm.disabled, PolicyTerminates(arm.policy)) << PolicyName(arm.policy);
    if (arm.policy == AccessPolicy::kThreshold) {
      EXPECT_EQ(arm.pulls, 2u);  // the focus pull + the forced penalty pull
      EXPECT_LT(arm.total_reward, -1e6);
    }
    if (arm.policy == AccessPolicy::kFailureOblivious) {
      EXPECT_GT(arm.total_reward, -1e4) << "innocent arm absorbed the crash penalty";
    }
  }
  EXPECT_FALSE(PolicyTerminates(controller.BestSpec().Resolve(a.site)));
}

TEST(AdaptiveControllerTest, LearnsTheLowErrorArmAndBestSpecReportsIt) {
  AdaptivePolicyController::Options options;
  options.candidates = {AccessPolicy::kFailureOblivious, AccessPolicy::kWrap};
  options.epsilon = 0.0;  // pure cover-then-exploit, no random pulls
  AdaptivePolicyController controller(options);
  SiteId site = MakeSiteId("hot", "serve", AccessKind::kWrite);

  // Simulated environment: FO logs 50 errors per epoch at the site, Wrap
  // logs 5. Epoch 0 runs the prior (FO); the focus pass tries Wrap next.
  uint64_t cumulative = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    AccessPolicy current =
        controller.sites().empty() ? options.prior : controller.sites()[0].current;
    cumulative += current == AccessPolicy::kWrap ? 5 : 50;
    controller.ObserveShardLog(0, LogWithSite("hot", "serve", true, cumulative));
    controller.EndEpoch(EpochVerdict{});
  }
  ASSERT_EQ(controller.sites().size(), 1u);
  EXPECT_EQ(controller.sites()[0].current, AccessPolicy::kWrap);
  EXPECT_EQ(controller.BestSpec().Resolve(site), AccessPolicy::kWrap);
  EXPECT_EQ(controller.BestSpec().fallback(), options.prior);
}

TEST(AdaptiveControllerTest, IdenticalObservationsYieldIdenticalTrajectories) {
  auto run = [] {
    AdaptivePolicyController::Options options;
    options.seed = 7;
    options.epsilon = 0.5;  // exercise the random path hard
    AdaptivePolicyController controller(options);
    std::vector<AccessPolicy> trajectory;
    uint64_t cumulative = 0;
    for (int epoch = 0; epoch < 30; ++epoch) {
      cumulative += 17;
      controller.ObserveShardLog(0, LogWithSite("u", "f", true, cumulative));
      controller.EndEpoch(EpochVerdict{});
      trajectory.push_back(controller.sites()[0].current);
    }
    return trajectory;
  };
  EXPECT_EQ(run(), run());
}

// ---- Live respec plumbing ---------------------------------------------------

TEST(AdaptiveRebindTest, FrontendRebindRespecsLiveWorkersAndReplacements) {
  // Workers constructed under FO; rebind to a uniform Standard spec makes
  // the attack crash a worker — and the crash *replacement*, built by the
  // FO factory, must also serve under the rebound spec.
  Frontend::Options options;
  options.workers = 1;
  options.batch = 4;
  Frontend frontend(MakeServerAppFactory(Server::kSendmail, AccessPolicy::kFailureOblivious),
                    options);
  EXPECT_EQ(frontend.pool().worker(0).memory().policy(), AccessPolicy::kFailureOblivious);

  frontend.Rebind(PolicySpec(AccessPolicy::kStandard));
  EXPECT_EQ(frontend.pool().worker(0).memory().policy(), AccessPolicy::kStandard);

  TrafficStream stream = MakeAttackStream(Server::kSendmail);
  for (const ServerRequest& request : stream.requests) {
    frontend.Connect(1).ClientSend(request.Serialize());
  }
  frontend.Connect(1).ClientClose();
  frontend.Run();
  EXPECT_GE(frontend.restarts(), 1u) << "the attack should crash a Standard worker";
  EXPECT_EQ(frontend.pool().worker(0).memory().policy(), AccessPolicy::kStandard)
      << "the replacement must inherit the rebound spec, not the factory's";
}

// ---- End to end -------------------------------------------------------------

AdaptiveExperimentOptions McOptions() {
  AdaptiveExperimentOptions options;
  // The sweep's candidate set keeps the run fast while still spanning the
  // interesting continuations (incl. per-site termination).
  options.controller.candidates = {kSweepCandidates.begin(), kSweepCandidates.end()};
  options.controller.max_sites = 3;
  options.epochs = 20;
  return options;
}

TEST(AdaptiveExperimentTest, SameStreamSeedAndWorkersLearnTheIdenticalAssignment) {
  TrafficStream stream = MakeMultiAttackStream(Server::kMc);
  AdaptiveReport a = RunAdaptiveExperiment(Server::kMc, stream, McOptions());
  AdaptiveReport b = RunAdaptiveExperiment(Server::kMc, stream, McOptions());

  EXPECT_EQ(a.learned.fallback(), b.learned.fallback());
  EXPECT_EQ(a.learned.overrides(), b.learned.overrides());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].errors, b.trace[i].errors) << "epoch " << i;
    EXPECT_EQ(a.trace[i].restarts, b.trace[i].restarts) << "epoch " << i;
    EXPECT_EQ(a.trace[i].spec.overrides(), b.trace[i].spec.overrides()) << "epoch " << i;
  }
  EXPECT_EQ(a.validation.memory_errors_logged, b.validation.memory_errors_logged);
}

TEST(AdaptiveExperimentTest, LearnedMcAssignmentBeatsUniformFailureOblivious) {
  TrafficStream stream = MakeMultiAttackStream(Server::kMc);
  AttackReport uniform = RunStreamExperiment(
      [&] { return MakeAttackServer(Server::kMc, AccessPolicy::kFailureOblivious); }, stream);
  ASSERT_EQ(uniform.outcome, Outcome::kContinued);
  ASSERT_GT(uniform.memory_errors_logged, 1000u) << "uniform FO should log heavily on MC";

  AdaptiveReport adaptive = RunAdaptiveExperiment(Server::kMc, stream, McOptions());
  EXPECT_EQ(adaptive.validation.outcome, Outcome::kContinued);
  EXPECT_TRUE(adaptive.validation.subsequent_requests_ok);
  // "Well under" the uniform FO baseline: the learner must land in the
  // order of magnitude of the sweep's best mixed assignment, not FO's.
  EXPECT_LT(adaptive.validation.memory_errors_logged, uniform.memory_errors_logged / 4);

  // The trace is renderable and names the learned assignment.
  std::string trace = adaptive.ToTraceString();
  EXPECT_NE(trace.find("learned:"), std::string::npos);
  EXPECT_NE(trace.find("epoch 0:"), std::string::npos);
}

TEST(AdaptiveExperimentTest, SendmailMultiAttackLearnerStaysAcceptable) {
  // The kThreshold trap stream (tests/test_sweep.cc): threshold on the hot
  // site terminates mid-stream. The online learner must end on an
  // assignment that serves the whole stream acceptably.
  TrafficStream stream = MakeMultiAttackStream(Server::kSendmail);
  AdaptiveExperimentOptions options;
  options.controller.candidates = {AccessPolicy::kThreshold, AccessPolicy::kFailureOblivious};
  options.controller.max_sites = 2;
  options.epochs = 10;
  AdaptiveReport report = RunAdaptiveExperiment(Server::kSendmail, stream, options);
  EXPECT_EQ(report.validation.outcome, Outcome::kContinued);
  EXPECT_TRUE(report.validation.subsequent_requests_ok);
  // An epoch that lost a worker to kThreshold retired the terminate arms.
  for (const AdaptiveSiteState& site : report.sites) {
    if (site.crash_tainted) {
      EXPECT_FALSE(PolicyTerminates(report.learned.Resolve(site.site)));
    }
  }
}

}  // namespace
}  // namespace fob
