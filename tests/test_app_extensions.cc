// The servers' wider API surface: the operations the stability sections
// (§4.2.4, §4.5.4, §4.6.4) describe users performing day to day.

#include <gtest/gtest.h>

#include "src/apps/apache.h"
#include "src/apps/mc.h"
#include "src/apps/mutt.h"
#include "src/apps/pine.h"
#include "src/apps/sendmail.h"
#include "src/harness/workloads.h"
#include "src/mail/message.h"
#include "src/net/imap.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

// ---- Pine: reply / forward ----------------------------------------------

TEST(PineReplyTest, QuotesOriginalBody) {
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(3, false));
  auto reply = pine.Reply(0, "thanks for this");
  ASSERT_TRUE(reply.ok);
  ASSERT_EQ(pine.FolderSize("sent"), 1u);
  // The quoted lines carry "> " prefixes and the reply references Re:.
  EXPECT_NE(reply.display.find("friend0@example.org"), std::string::npos);
}

TEST(PineReplyTest, ReplySubjectGetsRePrefix) {
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(2, false));
  pine.Reply(1, "ack");
  // Second reply to a reply-subject must not stack another Re:.
  pine.Reply(1, "ack again");
  EXPECT_EQ(pine.FolderSize("sent"), 2u);
}

TEST(PineReplyTest, ReplyOutOfRangeFails) {
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(1, false));
  EXPECT_FALSE(pine.Reply(5, "x").ok);
}

TEST(PineForwardTest, WrapsOriginal) {
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(2, false));
  auto fwd = pine.Forward(0, "third@example.org");
  ASSERT_TRUE(fwd.ok);
  EXPECT_EQ(pine.FolderSize("sent"), 1u);
  EXPECT_NE(fwd.display.find("third@example.org"), std::string::npos);
}

TEST(PineReplyTest, ReplyToAttackMessageWorksUnderFailureOblivious) {
  // §4.2.4: the stability period included replying while attack messages
  // sat in the mailbox.
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(3, true));
  auto reply = pine.Reply(1, "re: the strange one");  // attack sits at index 2 of 0..3
  EXPECT_TRUE(reply.ok);
  auto reply_to_attack = pine.Reply(2, "who are you?");
  EXPECT_TRUE(reply_to_attack.ok);
}

// ---- Mutt: compose / forward via IMAP APPEND -------------------------------

TEST(MuttComposeTest, AppendsToFolder) {
  ImapServer imap;
  imap.AddFolderUtf8("Sent", {});
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  auto result = mutt.Compose("Sent", "peer@example.org", "hello", "body\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(imap.Select("Sent").message_count, 1u);
}

TEST(MuttComposeTest, ComposeToMissingFolderIsHandledError) {
  ImapServer imap;
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  auto result = mutt.Compose("Ghost", "a@b", "s", "b");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("does not exist"), std::string::npos);
}

TEST(MuttComposeTest, ComposeToAttackNamedFolderFailsGracefully) {
  ImapServer imap;
  imap.AddFolderUtf8("Sent", {});
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  auto result = mutt.Compose(MakeMuttAttackFolderName(), "a@b", "s", "b");
  EXPECT_FALSE(result.ok);  // truncated name does not match any mailbox
  EXPECT_TRUE(mutt.Compose("Sent", "a@b", "s", "b").ok);  // and we continue
}

TEST(MuttForwardTest, ForwardAppendsACopy) {
  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {MailMessage::Make("a@b", "me", "original", "text\n")});
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  auto result = mutt.Forward("INBOX", 1, "peer@x");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(imap.Select("INBOX").message_count, 2u);
}

// ---- MC: view / extract ---------------------------------------------------

TEST(McViewTest, ReadsFileThroughPager) {
  McApp mc(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(false));
  mc.fs().WriteFile("/notes.txt", "important notes", true);
  auto view = mc.View("/notes.txt");
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(*view, "important notes");
  EXPECT_FALSE(mc.View("/missing.txt").has_value());
}

TEST(McViewTest, LimitTruncatesLargeFiles) {
  McApp mc(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(false));
  mc.fs().WriteFile("/big.txt", std::string(10000, 'z'), true);
  auto view = mc.View("/big.txt", 100);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->size(), 100u);
}

TEST(McExtractTest, ExtractsFileFromBenignArchive) {
  McApp mc(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(false));
  mc.fs().MkDir("/downloads", true);
  ASSERT_TRUE(mc.ExtractFromTgz(MakeMcBenignTgz(), "pkg/a.txt", "/downloads"));
  EXPECT_EQ(mc.fs().ReadFile("/downloads/a.txt"), "file a\n");
}

TEST(McExtractTest, ExtractFromAttackArchiveStillWorks) {
  // The attack only corrupts the *browse* path; extracting a file entry
  // from the same archive is fine under failure-oblivious execution.
  McApp mc(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(false));
  mc.memory().set_access_budget(10'000'000);
  ASSERT_TRUE(mc.BrowseTgz(MakeMcAttackTgz()).ok);
  ASSERT_TRUE(mc.ExtractFromTgz(MakeMcAttackTgz(), "pkg/readme.txt", "/tmp"));
  EXPECT_EQ(mc.fs().ReadFile("/tmp/readme.txt"), "malicious archive\n");
}

TEST(McExtractTest, MissingEntryFails) {
  McApp mc(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(false));
  EXPECT_FALSE(mc.ExtractFromTgz(MakeMcBenignTgz(), "no/such/entry", "/x"));
  EXPECT_FALSE(mc.ExtractFromTgz("garbage", "pkg/a.txt", "/x"));
}

// ---- Sendmail: VRFY / EXPN --------------------------------------------------

TEST(SendmailVrfyTest, LocalAndRemoteAnswers) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  EXPECT_EQ(daemon.HandleCommand("VRFY user@localhost").substr(0, 3), "250");
  EXPECT_EQ(daemon.HandleCommand("VRFY someone@far.example").substr(0, 3), "252");
  EXPECT_EQ(daemon.HandleCommand("EXPN staff").substr(0, 3), "550");
}

TEST(SendmailVrfyTest, VrfyIsAnotherPathToThePrescanBug) {
  // Standard compilation: VRFY with the attack address also smashes the
  // stack — the bug is in the shared parser, not the MAIL handler.
  SendmailApp standard(AccessPolicy::kStandard);
  RunResult result = RunAsProcess(
      [&] { standard.HandleCommand("VRFY <" + MakeSendmailAttackAddress(24) + ">"); });
  EXPECT_EQ(result.status, ExitStatus::kStackSmash);
  // Failure-oblivious: rejected, daemon fine.
  SendmailApp oblivious(AccessPolicy::kFailureOblivious);
  EXPECT_EQ(oblivious
                .HandleCommand("VRFY <" + MakeSendmailAttackAddress(24) + ">")
                .substr(0, 3),
            "553");
}

// ---- Apache: HEAD + access log ----------------------------------------------

TEST(ApacheHeadTest, HeadReturnsHeadersOnly) {
  Vfs docroot = MakeApacheDocroot();
  ApacheApp apache(AccessPolicy::kFailureOblivious, &docroot, ApacheApp::DefaultConfigText());
  HttpRequest head = MakeHttpGet("/index.html");
  head.method = "HEAD";
  HttpResponse response = apache.Handle(head);
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.body.empty());
  // Content-Length reflects the real resource size.
  bool found = false;
  for (const auto& [name, value] : response.headers) {
    if (name == "Content-Length") {
      EXPECT_GT(std::stoul(value), 4000u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ApacheLogTest, EveryRequestIsLogged) {
  Vfs docroot = MakeApacheDocroot();
  ApacheApp apache(AccessPolicy::kFailureOblivious, &docroot, ApacheApp::DefaultConfigText());
  apache.Handle(MakeHttpGet("/index.html"));
  apache.Handle(MakeHttpGet("/missing"));
  ASSERT_EQ(apache.access_log().size(), 2u);
  EXPECT_NE(apache.access_log()[0].find("\"GET /index.html HTTP/1.0\" 200"), std::string::npos);
  EXPECT_NE(apache.access_log()[1].find(" 404 "), std::string::npos);
}

TEST(ApacheLogTest, AttackRequestLoggedNormallyUnderFailureOblivious) {
  Vfs docroot = MakeApacheDocroot();
  ApacheApp apache(AccessPolicy::kFailureOblivious, &docroot, ApacheApp::DefaultConfigText());
  apache.Handle(MakeHttpGet(MakeApacheAttackUrl()));
  ASSERT_EQ(apache.access_log().size(), 1u);
  EXPECT_NE(apache.access_log()[0].find(" 200 "), std::string::npos);
}

// ---- bounded boundless store --------------------------------------------------

TEST(BoundlessCapacityTest, EvictsColdPagesWhenFull) {
  Memory::Config config;
  config.policy = AccessPolicy::kBoundless;
  // The paged store evicts at page granularity: two 256-byte pages.
  config.boundless_capacity = 512;
  Memory memory(config);
  Ptr unit = memory.Malloc(4, "small");
  for (int i = 0; i < 20; ++i) {
    // One byte in each of 20 distinct pages, so capacity pressure must
    // evict whole cold pages.
    memory.WriteU8(unit + 100 + static_cast<int64_t>(i) * 4096, static_cast<uint8_t>(i + 1));
  }
  EXPECT_LE(memory.boundless().stored_bytes(), 2u);
  EXPECT_GE(memory.boundless().evictions(), 12u);
  // The newest byte survives; the oldest fall back to manufactured values.
  EXPECT_EQ(memory.ReadU8(unit + 100 + 19 * 4096), 20);
  EXPECT_NE(memory.ReadU8(unit + 100 + 0), 0xff);  // readable, just not stored
}

TEST(BoundlessCapacityTest, UnboundedByDefault) {
  Memory memory(AccessPolicy::kBoundless);
  Ptr unit = memory.Malloc(4, "small");
  for (int i = 0; i < 1000; ++i) {
    memory.WriteU8(unit + 100 + i, 1);
  }
  EXPECT_EQ(memory.boundless().stored_bytes(), 1000u);
  EXPECT_EQ(memory.boundless().evictions(), 0u);
}

TEST(BoundlessCapacityTest, RewriteDoesNotConsumeCapacity) {
  Memory::Config config;
  config.policy = AccessPolicy::kBoundless;
  config.boundless_capacity = 4;
  Memory memory(config);
  Ptr unit = memory.Malloc(4, "small");
  for (int i = 0; i < 100; ++i) {
    memory.WriteU8(unit + 10, static_cast<uint8_t>(i));  // same offset
  }
  EXPECT_EQ(memory.boundless().stored_bytes(), 1u);
  EXPECT_EQ(memory.ReadU8(unit + 10), 99);
}

}  // namespace
}  // namespace fob
