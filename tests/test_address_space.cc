#include "src/softmem/address_space.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/softmem/page_map.h"

namespace fob {
namespace {

TEST(AddressSpaceTest, UnmappedByDefault) {
  AddressSpace space;
  EXPECT_FALSE(space.IsMapped(0x100000, 1));
  uint8_t byte = 0;
  EXPECT_FALSE(space.Read(0x100000, &byte, 1));
  EXPECT_FALSE(space.Write(0x100000, &byte, 1));
}

TEST(AddressSpaceTest, MapThenReadWrite) {
  AddressSpace space;
  space.Map(0x100000, 4096);
  EXPECT_TRUE(space.IsMapped(0x100000, 4096));
  uint32_t value = 0xdeadbeef;
  ASSERT_TRUE(space.Write(0x100010, &value, 4));
  uint32_t readback = 0;
  ASSERT_TRUE(space.Read(0x100010, &readback, 4));
  EXPECT_EQ(readback, 0xdeadbeefu);
}

TEST(AddressSpaceTest, FreshPagesAreZero) {
  AddressSpace space;
  space.Map(0x200000, kPageSize);
  uint8_t buf[64];
  std::memset(buf, 0xff, sizeof(buf));
  ASSERT_TRUE(space.Read(0x200000, buf, sizeof(buf)));
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0);
  }
}

TEST(AddressSpaceTest, NullGuardNeverMaps) {
  AddressSpace space;
  space.Map(0, kNullGuardSize);
  EXPECT_FALSE(space.IsMapped(0, 1));
  EXPECT_FALSE(space.IsMapped(kNullGuardSize - 1, 1));
  uint8_t byte = 7;
  EXPECT_FALSE(space.Write(0, &byte, 1));
  EXPECT_FALSE(space.Write(8, &byte, 1));
}

TEST(AddressSpaceTest, CrossPageAccess) {
  AddressSpace space;
  space.Map(0x100000, 2 * kPageSize);
  std::string data(kPageSize, 'x');
  Addr addr = 0x100000 + kPageSize - 100;  // straddles the page boundary
  ASSERT_TRUE(space.Write(addr, data.data(), data.size()));
  std::string readback(kPageSize, '\0');
  ASSERT_TRUE(space.Read(addr, readback.data(), readback.size()));
  EXPECT_EQ(readback, data);
}

TEST(AddressSpaceTest, AccessStraddlingUnmappedPageFails) {
  AddressSpace space;
  space.Map(0x100000, kPageSize);  // only the first page
  std::string data(200, 'y');
  Addr addr = 0x100000 + kPageSize - 100;
  EXPECT_FALSE(space.Write(addr, data.data(), data.size()));
  EXPECT_FALSE(space.IsMapped(addr, 200));
}

TEST(AddressSpaceTest, MapIsIdempotentAndPreservesContents) {
  AddressSpace space;
  space.Map(0x100000, kPageSize);
  uint8_t v = 42;
  ASSERT_TRUE(space.Write(0x100123, &v, 1));
  space.Map(0x100000, kPageSize);  // remap
  uint8_t readback = 0;
  ASSERT_TRUE(space.Read(0x100123, &readback, 1));
  EXPECT_EQ(readback, 42);
}

TEST(AddressSpaceTest, UnmapRemovesWholePagesOnly) {
  AddressSpace space;
  space.Map(0x100000, 3 * kPageSize);
  // Partial-page unmap range: only the fully covered middle page goes away.
  space.Unmap(0x100000 + 100, 2 * kPageSize);
  EXPECT_TRUE(space.IsMapped(0x100000, 1));
  EXPECT_FALSE(space.IsMapped(0x100000 + kPageSize, 1));
  EXPECT_TRUE(space.IsMapped(0x100000 + 2 * kPageSize, 1));
}

TEST(AddressSpaceTest, FillSetsBytes) {
  AddressSpace space;
  space.Map(0x100000, kPageSize * 2);
  ASSERT_TRUE(space.Fill(0x100000 + kPageSize - 8, 0xab, 16));  // cross-page
  uint8_t buf[16];
  ASSERT_TRUE(space.Read(0x100000 + kPageSize - 8, buf, 16));
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0xab);
  }
}

TEST(AddressSpaceTest, FillUnmappedFails) {
  AddressSpace space;
  EXPECT_FALSE(space.Fill(0x300000, 1, 4));
}

TEST(AddressSpaceTest, ZeroSizeOperations) {
  AddressSpace space;
  space.Map(0x100000, 0);  // no-op
  EXPECT_EQ(space.page_count(), 0u);
  space.Map(0x100000, 1);
  EXPECT_EQ(space.page_count(), 1u);
  uint8_t byte = 0;
  EXPECT_TRUE(space.Read(0x100000, &byte, 0));
  EXPECT_TRUE(space.Write(0x100000, &byte, 0));
}

TEST(AddressSpaceTest, MappedBytesAccounting) {
  AddressSpace space;
  space.Map(0x100000, kPageSize + 1);  // rounds up to two pages
  EXPECT_EQ(space.mapped_bytes(), 2 * kPageSize);
}

// Regression: the translation cache must not serve accesses through a page
// that Unmap freed. Remapping the same page allocates fresh zeroed storage;
// a stale cache entry would instead read the old (freed) data — or worse.
TEST(AddressSpaceTest, UnmapInvalidatesTranslationCache) {
  AddressSpace space;
  constexpr Addr kBase = 0x100000;
  space.Map(kBase, kPageSize);
  uint8_t value = 0x5a;
  ASSERT_TRUE(space.Write(kBase + 17, &value, 1));  // warms the cache
  space.Unmap(kBase, kPageSize);
  // The unmapped page must not be readable through the cache.
  uint8_t out = 0;
  EXPECT_FALSE(space.Read(kBase + 17, &out, 1));
  EXPECT_FALSE(space.Write(kBase + 17, &value, 1));
  // A fresh mapping of the same page is zero filled; a stale cache entry
  // would leak the 0x5a through the old allocation.
  space.Map(kBase, kPageSize);
  ASSERT_TRUE(space.Read(kBase + 17, &out, 1));
  EXPECT_EQ(out, 0);
}

// Unmapping one page must not drop translations for other pages, and an
// unmap that only partially covers a page must leave it readable.
TEST(AddressSpaceTest, UnmapIsPreciseAboutOtherPages) {
  AddressSpace space;
  constexpr Addr kBase = 0x100000;
  space.Map(kBase, kPageSize * 2);
  uint8_t value = 0x7f;
  ASSERT_TRUE(space.Write(kBase + kPageSize + 5, &value, 1));  // cache page 2
  space.Unmap(kBase, kPageSize);  // page 1 only
  uint8_t out = 0;
  ASSERT_TRUE(space.Read(kBase + kPageSize + 5, &out, 1));
  EXPECT_EQ(out, 0x7f);
  // Partial coverage: no page is fully inside [base+1, base+kPageSize), so
  // nothing is unmapped.
  space.Map(kBase, kPageSize);
  space.Unmap(kBase + 1, kPageSize - 2);
  EXPECT_TRUE(space.IsMapped(kBase, kPageSize));
}

// The direct-mapped translation cache holds 64 entries; pages 64 slots
// apart conflict and must evict each other cleanly, and a warm cache over
// many pages must keep every translation correct.
TEST(AddressSpaceTest, TranslationCacheSurvivesConflictsAcrossManyPages) {
  AddressSpace space;
  constexpr Addr kBase = 0x100000;
  constexpr size_t kPages = 130;  // > 2x the cache's 64 slots
  space.Map(kBase, kPages * kPageSize);
  for (size_t i = 0; i < kPages; ++i) {
    uint8_t v = static_cast<uint8_t>(i);
    ASSERT_TRUE(space.Write(kBase + i * kPageSize + 7, &v, 1));
  }
  // Re-read in an order that ping-pongs conflicting slots (i and i + 64).
  for (size_t i = 0; i < kPages - 64; ++i) {
    uint8_t a = 0xff;
    uint8_t b = 0xff;
    ASSERT_TRUE(space.Read(kBase + i * kPageSize + 7, &a, 1));
    ASSERT_TRUE(space.Read(kBase + (i + 64) * kPageSize + 7, &b, 1));
    EXPECT_EQ(a, static_cast<uint8_t>(i));
    EXPECT_EQ(b, static_cast<uint8_t>(i + 64));
  }
}

// An Unmap spanning several cached pages must drop every covered
// translation, not just the first page's.
TEST(AddressSpaceTest, UnmapSpanningManyCachedPages) {
  AddressSpace space;
  constexpr Addr kBase = 0x100000;
  constexpr size_t kPages = 8;
  space.Map(kBase, kPages * kPageSize);
  for (size_t i = 0; i < kPages; ++i) {
    uint8_t v = 0x5a;
    ASSERT_TRUE(space.Write(kBase + i * kPageSize, &v, 1));  // warm each slot
  }
  space.Unmap(kBase, kPages * kPageSize);
  for (size_t i = 0; i < kPages; ++i) {
    uint8_t out = 0;
    EXPECT_FALSE(space.Read(kBase + i * kPageSize, &out, 1));
  }
  // Remap: all pages fresh and zeroed, none served from stale slots.
  space.Map(kBase, kPages * kPageSize);
  for (size_t i = 0; i < kPages; ++i) {
    uint8_t out = 0xff;
    ASSERT_TRUE(space.Read(kBase + i * kPageSize, &out, 1));
    EXPECT_EQ(out, 0);
  }
}

// ---- Page-map coherence through Map/Unmap ---------------------------------

TEST(AddressSpacePageMapTest, MapAndUnmapDrivePageRecords) {
  AddressSpace space;
  PageMap map;
  space.AttachPageMap(&map);
  constexpr Addr kBase = 0x100000;
  space.Map(kBase, 2 * kPageSize);
  EXPECT_TRUE(map.HasData(kBase));
  EXPECT_TRUE(map.HasData(kBase + kPageSize + 99));
  EXPECT_FALSE(map.HasData(kBase + 2 * kPageSize));
  space.Unmap(kBase, kPageSize);
  EXPECT_FALSE(map.HasData(kBase));
  EXPECT_TRUE(map.HasData(kBase + kPageSize));
}

TEST(AddressSpacePageMapTest, AttachPopulatesExistingPages) {
  AddressSpace space;
  constexpr Addr kBase = 0x100000;
  space.Map(kBase, kPageSize);
  PageMap map;
  space.AttachPageMap(&map);
  EXPECT_TRUE(map.HasData(kBase));
  EXPECT_FALSE(map.HasData(kBase + kPageSize));
}

TEST(AddressSpacePageMapTest, RemapRefreshesDataPointer) {
  AddressSpace space;
  PageMap map;
  space.AttachPageMap(&map);
  constexpr Addr kBase = 0x100000;
  space.Map(kBase, kPageSize);
  space.Unmap(kBase, kPageSize);
  EXPECT_FALSE(map.HasData(kBase));
  space.Map(kBase, kPageSize);
  // The record must point at the fresh page's storage.
  EXPECT_TRUE(map.HasData(kBase));
  const PageMap::Entry* entry = map.Find(kBase);
  ASSERT_NE(entry, nullptr);
  uint8_t v = 0x42;
  ASSERT_TRUE(space.Write(kBase + 5, &v, 1));
  EXPECT_EQ(entry->data[5], 0x42);
}

}  // namespace
}  // namespace fob
