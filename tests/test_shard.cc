// The shard model: Memory as a façade over one self-contained Shard bundle,
// shard-id stamping through the worker pool (stable across crash
// replacements), and the concurrency-determinism property of parallel
// Frontend dispatch — same stream + same seed + N ∈ {1,2,8} workers produce
// identical merged per-request responses and identical merged MemLog site
// aggregates, because N workers own N disjoint shards and the merge rule is
// deterministic (ascending shard-id order).

#include "src/runtime/shard.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/workloads.h"
#include "src/net/frontend.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

// ---- The bundle -------------------------------------------------------------

TEST(ShardTest, MemoryIsAFacadeOverItsShard) {
  Memory memory(AccessPolicy::kFailureOblivious);
  // The public views and the shard handle are the same objects.
  EXPECT_EQ(&memory.log(), &memory.shard().log);
  EXPECT_EQ(&memory.space(), &memory.shard().space);
  EXPECT_EQ(&memory.objects(), &memory.shard().table);
  EXPECT_EQ(&memory.heap(), memory.shard().heap.get());
  EXPECT_EQ(&memory.stack(), memory.shard().stack.get());
  EXPECT_EQ(&memory.sequence(), &memory.shard().sequence);
  EXPECT_EQ(memory.access_count(), memory.shard().accesses);
}

TEST(ShardTest, TwoShardsShareNothing) {
  Memory a(AccessPolicy::kFailureOblivious);
  Memory b(AccessPolicy::kFailureOblivious);

  Ptr pa = a.Malloc(8, "a_buf");
  // Committing an error in shard A must not disturb shard B's log, oob
  // registry, sequence, or access counter.
  a.ReadU8(pa + 64);
  EXPECT_EQ(a.log().total_errors(), 1u);
  EXPECT_EQ(b.log().total_errors(), 0u);
  EXPECT_EQ(b.access_count(), 0u);
  EXPECT_EQ(b.sequence().values_produced(), 0u);

  // Identical allocation histories produce identical layouts: the bundles
  // are fully self-contained, with no cross-shard allocation state.
  Ptr pb = b.Malloc(8, "b_buf");
  EXPECT_EQ(pa.addr, pb.addr);
}

TEST(ShardTest, ShardIdIsStampedPerWorkerAndSurvivesReplacement) {
  Frontend frontend(MakeServerAppFactory(Server::kApache, AccessPolicy::kStandard),
                    Frontend::Options{.workers = 3, .batch = 1});
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(frontend.pool().worker(i).memory().shard_id(), i);
  }
  // Crash worker 0's lane (client 1 is the first-seen client, lane 0) and
  // check the replacement keeps the slot's shard id.
  LineChannel& attacker = frontend.Connect(1);
  attacker.ClientSend(
      MakeRequest(RequestTag::kAttack, "get", MakeApacheAttackUrl()).Serialize());
  attacker.ClientClose();
  frontend.Run();
  EXPECT_EQ(frontend.restarts(), 1u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(frontend.pool().worker(i).memory().shard_id(), i);
  }
}

// ---- Concurrency determinism ------------------------------------------------

std::map<SiteId, uint64_t> SiteCounts(const MemLog& log) {
  std::map<SiteId, uint64_t> counts;
  for (const auto& [site, stat] : log.sites()) {
    counts[site] = stat.count;
  }
  return counts;
}

// Apache and Mutt handle each request independently of accumulated shard
// state (their FO continuations do not leak manufactured-sequence phase or
// heap history into responses or error counts), so distributing a stream
// over N shards must not change the merged outcome at all. Pine, Sendmail
// and MC are deliberately not pinned here: their per-request behavior reads
// the shard's manufactured-value phase, which sharding legitimately
// redistributes.
void ExpectMergedOutcomeInvariantAcrossWorkerCounts(Server server) {
  StreamOptions stream_options;
  stream_options.requests = 48;
  stream_options.clients = 6;
  stream_options.attack_period = 4;
  stream_options.attacks_per_period = 1;
  stream_options.seed = 7;
  TrafficStream stream = MakeTrafficStream(server, stream_options);
  ServerFactory factory = MakeServerAppFactory(server, AccessPolicy::kFailureOblivious);

  FrontendReport baseline =
      RunFrontendExperiment(factory, stream, Frontend::Options{.workers = 1, .batch = 4});
  ASSERT_EQ(baseline.responses.size(), stream.requests.size());
  ASSERT_GT(baseline.merged_log.total_errors(), 0u) << "stream reached no error sites";
  ASSERT_EQ(baseline.restarts, 0u);

  for (size_t workers : {2u, 8u}) {
    FrontendReport parallel = RunFrontendExperiment(
        factory, stream, Frontend::Options{.workers = workers, .batch = 4});
    ASSERT_EQ(parallel.responses.size(), stream.requests.size());
    for (size_t i = 0; i < stream.requests.size(); ++i) {
      EXPECT_EQ(parallel.responses[i].Serialize(), baseline.responses[i].Serialize())
          << ServerName(server) << ": response " << i << " differs at workers=" << workers;
    }
    EXPECT_EQ(parallel.merged_log.total_errors(), baseline.merged_log.total_errors())
        << ServerName(server) << " at workers=" << workers;
    EXPECT_EQ(SiteCounts(parallel.merged_log), SiteCounts(baseline.merged_log))
        << ServerName(server) << ": merged site aggregates differ at workers=" << workers;
    EXPECT_EQ(parallel.restarts, 0u);
    EXPECT_EQ(parallel.stats.served, baseline.stats.served);
  }
}

TEST(ShardDeterminismTest, ApacheMergedOutcomeIdenticalFor1And2And8Workers) {
  ExpectMergedOutcomeInvariantAcrossWorkerCounts(Server::kApache);
}

TEST(ShardDeterminismTest, MuttMergedOutcomeIdenticalFor1And2And8Workers) {
  ExpectMergedOutcomeInvariantAcrossWorkerCounts(Server::kMutt);
}

// The page-map fast-path counters are part of the deterministic outcome:
// identical stream + seed + worker count must produce identical merged
// translation hit/miss totals (shards are disjoint and access streams are
// replayed identically, so the counters can only differ if dispatch
// nondeterminism leaked into the access path).
TEST(ShardDeterminismTest, TranslationCountersAreDeterministicPerRun) {
  StreamOptions stream_options;
  stream_options.requests = 48;
  stream_options.clients = 6;
  stream_options.attack_period = 4;
  stream_options.attacks_per_period = 1;
  stream_options.seed = 7;
  TrafficStream stream = MakeTrafficStream(Server::kApache, stream_options);
  ServerFactory factory = MakeServerAppFactory(Server::kApache, AccessPolicy::kFailureOblivious);
  Frontend::Options options{.workers = 2, .batch = 4};

  FrontendReport first = RunFrontendExperiment(factory, stream, options);
  FrontendReport second = RunFrontendExperiment(factory, stream, options);
  ASSERT_GT(first.merged_log.translation_hits() + first.merged_log.translation_misses(), 0u)
      << "stream exercised no checked accesses";
  EXPECT_EQ(first.merged_log.translation_hits(), second.merged_log.translation_hits());
  EXPECT_EQ(first.merged_log.translation_misses(), second.merged_log.translation_misses());
}

TEST(ShardDeterminismTest, StealingKeepsMergedOutcomeInvariantForAHotClient) {
  // One client means one sticky lane: at workers>1 every other lane is idle
  // and the steal plan must redistribute the hot backlog across shards
  // (stolen_batches > 0 — stealing is actually exercised, not vacuous).
  // Apache handles each request independently of shard history, so the
  // merged outcome must still be byte-identical to the single-worker run
  // even though different worker counts steal onto different shards.
  StreamOptions stream_options;
  stream_options.requests = 48;
  stream_options.clients = 1;
  stream_options.attack_period = 4;
  stream_options.attacks_per_period = 1;
  stream_options.seed = 7;
  TrafficStream stream = MakeTrafficStream(Server::kApache, stream_options);
  ServerFactory factory = MakeServerAppFactory(Server::kApache, AccessPolicy::kFailureOblivious);

  FrontendReport baseline =
      RunFrontendExperiment(factory, stream, Frontend::Options{.workers = 1, .batch = 4});
  ASSERT_EQ(baseline.responses.size(), stream.requests.size());
  ASSERT_GT(baseline.merged_log.total_errors(), 0u) << "stream reached no error sites";
  EXPECT_EQ(baseline.stats.stolen_batches, 0u);  // one lane: nothing to steal

  for (size_t workers : {2u, 8u}) {
    FrontendReport parallel = RunFrontendExperiment(
        factory, stream, Frontend::Options{.workers = workers, .batch = 4});
    EXPECT_GT(parallel.stats.stolen_batches, 0u) << "workers=" << workers;
    ASSERT_EQ(parallel.responses.size(), stream.requests.size());
    for (size_t i = 0; i < stream.requests.size(); ++i) {
      EXPECT_EQ(parallel.responses[i].Serialize(), baseline.responses[i].Serialize())
          << "response " << i << " differs at workers=" << workers;
    }
    EXPECT_EQ(parallel.merged_log.total_errors(), baseline.merged_log.total_errors())
        << "workers=" << workers;
    EXPECT_EQ(SiteCounts(parallel.merged_log), SiteCounts(baseline.merged_log))
        << "merged site aggregates differ at workers=" << workers;
    // The merged log carries the scheduler's story too.
    EXPECT_EQ(parallel.merged_log.stolen_batches(), parallel.stats.stolen_batches);
    EXPECT_EQ(parallel.restarts, 0u);
  }
}

TEST(ShardDeterminismTest, CrashingPolicyRunsAreRepeatableUnderParallelDispatch) {
  // Even when workers crash and are replaced mid-run, sticky lanes plus
  // post-join merging make the whole run a deterministic function of the
  // stream: two identical parallel runs agree response-for-response, on
  // restart count, and on requeue accounting.
  StreamOptions stream_options;
  stream_options.requests = 32;
  stream_options.clients = 5;
  stream_options.attack_period = 3;
  stream_options.attacks_per_period = 1;
  stream_options.seed = 11;
  TrafficStream stream = MakeTrafficStream(Server::kApache, stream_options);
  ServerFactory factory = MakeServerAppFactory(Server::kApache, AccessPolicy::kStandard);
  Frontend::Options options{.workers = 4, .batch = 4};

  FrontendReport first = RunFrontendExperiment(factory, stream, options);
  FrontendReport second = RunFrontendExperiment(factory, stream, options);
  ASSERT_GT(first.restarts, 0u) << "attack stream crashed no workers";
  EXPECT_EQ(first.restarts, second.restarts);
  EXPECT_EQ(first.stats.failed, second.stats.failed);
  EXPECT_EQ(first.stats.requeued, second.stats.requeued);
  EXPECT_EQ(first.stats.batches, second.stats.batches);
  ASSERT_EQ(first.responses.size(), second.responses.size());
  for (size_t i = 0; i < first.responses.size(); ++i) {
    EXPECT_EQ(first.responses[i].Serialize(), second.responses[i].Serialize()) << "response " << i;
  }
}

}  // namespace
}  // namespace fob
