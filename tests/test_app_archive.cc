// mini archive-inbox server (post-§4 matrix row): the gzip 1.2.4 FNAME
// overflow under every policy, the anticipated malformed-container errors,
// and the fuzzer-facing slot-staging site the shipped workloads never touch.

#include "src/apps/archive_inbox.h"

#include <gtest/gtest.h>

#include <string>

#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

// The recorded original name MakeArchiveAttackTgz embeds (workloads.cc):
// "home-backup-final-v2/" repeated, resized to name_chars.
std::string AttackName(size_t name_chars) {
  std::string name;
  while (name.size() < name_chars) {
    name += "home-backup-final-v2/";
  }
  name.resize(name_chars);
  return name;
}

TEST(ArchiveInboxTest, FailureObliviousTruncatesTheDisplayName) {
  ArchiveInboxApp app(AccessPolicy::kFailureOblivious);
  auto upload = app.Upload("drop0", MakeArchiveAttackTgz());
  // The upload never depended on the name: it stores all three files.
  EXPECT_TRUE(upload.ok);
  ASSERT_EQ(upload.files.size(), 3u);
  EXPECT_EQ(upload.files[0], "pkg/data.bin");
  // The display name is the in-bounds prefix: the overflow writes were
  // discarded and the read-back scan stopped at the first manufactured zero.
  std::string expected = AttackName(ArchiveInboxApp::kNameBufSize);
  EXPECT_NE(upload.display.find("from \"" + expected + "\""), std::string::npos)
      << upload.display;
  EXPECT_GT(app.memory().log().write_errors(), 0u);
}

TEST(ArchiveInboxTest, BoundlessRoundTripsTheFullName) {
  ArchiveInboxApp app(AccessPolicy::kBoundless);
  auto upload = app.Upload("drop0", MakeArchiveAttackTgz());
  EXPECT_TRUE(upload.ok);
  EXPECT_NE(upload.display.find("from \"" + AttackName(96) + "\""), std::string::npos)
      << upload.display;
}

TEST(ArchiveInboxTest, WrapLeavesAnEmptyDisplayName) {
  // 97 wrapped stores: the terminating NUL lands on buffer[0], so the name
  // reads back empty and the display drops the "from" clause entirely.
  ArchiveInboxApp app(AccessPolicy::kWrap);
  auto upload = app.Upload("drop0", MakeArchiveAttackTgz());
  EXPECT_TRUE(upload.ok);
  EXPECT_EQ(upload.display, "stored 3 files");
}

TEST(ArchiveInboxTest, StandardSmashesTheStack) {
  ArchiveInboxApp app(AccessPolicy::kStandard);
  RunResult result = RunAsProcess([&] { app.Upload("drop0", MakeArchiveAttackTgz()); });
  EXPECT_EQ(result.status, ExitStatus::kStackSmash);
}

TEST(ArchiveInboxTest, BoundsCheckTerminatesAtTheFirstStore) {
  ArchiveInboxApp app(AccessPolicy::kBoundsCheck);
  RunResult result = RunAsProcess([&] { app.Upload("drop0", MakeArchiveAttackTgz()); });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST(ArchiveInboxTest, FailureObliviousKeepsServingAfterTheAttack) {
  ArchiveInboxApp app(AccessPolicy::kFailureOblivious);
  ASSERT_TRUE(app.Upload("drop0", MakeArchiveAttackTgz()).ok);
  auto list = app.List("drop0");
  EXPECT_TRUE(list.ok);
  EXPECT_EQ(list.files.size(), 3u);
  auto benign = app.Upload("drop1", MakeArchiveBenignTgz());
  EXPECT_TRUE(benign.ok);
  EXPECT_EQ(benign.files.size(), 2u);
  auto extract = app.Extract("drop0", "pkg/readme.txt");
  EXPECT_TRUE(extract.ok);
  EXPECT_EQ(extract.display, "uploaded archive\n");
  EXPECT_TRUE(app.Drop("drop1").ok);
  EXPECT_FALSE(app.List("drop1").ok);
}

TEST(ArchiveInboxTest, MalformedContainersGetTheAnticipatedError) {
  ArchiveInboxApp app(AccessPolicy::kFailureOblivious);
  // Truncated mid-name: the FNAME parse copies the partial field (short
  // enough to stay in bounds), then the honest gunzip rejects the stream.
  auto truncated = app.Upload("drop0", MakeArchiveAttackTgz().substr(0, 20));
  EXPECT_FALSE(truncated.ok);
  EXPECT_EQ(truncated.error.rfind("Cannot open archive", 0), 0u) << truncated.error;
  // Not a gzip stream at all.
  auto garbage = app.Upload("drop0", "this is not a tgz");
  EXPECT_FALSE(garbage.ok);
  EXPECT_EQ(garbage.error.rfind("Cannot open archive", 0), 0u) << garbage.error;
  EXPECT_TRUE(app.List("drop0").files.empty());
}

TEST(ArchiveInboxTest, ShippedSlotNamesFitTheStagingBuffer) {
  // The baseline workloads must never touch the slot-staging site — it is
  // reserved for the fuzzer to discover (tests/test_fuzz.cc).
  ArchiveInboxApp app(AccessPolicy::kFailureOblivious);
  ASSERT_TRUE(app.Upload("drop1", MakeArchiveBenignTgz()).ok);
  app.List("drop1");
  app.Extract("drop1", "pkg/a.txt");
  app.Drop("drop1");
  EXPECT_EQ(app.memory().log().total_errors(), 0u) << app.memory().log().Summary();
}

TEST(ArchiveInboxTest, OversizedSlotNameOverflowsTheStagingBuffer) {
  ArchiveInboxApp app(AccessPolicy::kFailureOblivious);
  std::string slot(2 * ArchiveInboxApp::kSlotBufSize, 'x');
  auto upload = app.Upload(slot, MakeArchiveBenignTgz());
  // Failure-oblivious: the staged slot truncates, the upload proceeds.
  EXPECT_TRUE(upload.ok);
  bool saw_slot_site = false;
  for (const auto& [id, stat] : app.memory().log().sites()) {
    if (stat.unit_name.find("slot_name_buf") != std::string::npos && stat.is_write) {
      saw_slot_site = true;
    }
  }
  EXPECT_TRUE(saw_slot_site) << app.memory().log().Summary();
}

}  // namespace
}  // namespace fob
