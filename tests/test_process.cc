#include "src/runtime/process.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "src/runtime/memory.h"

namespace fob {
namespace {

TEST(RunAsProcessTest, OkWhenNothingThrown) {
  RunResult result = RunAsProcess([] {});
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.crashed());
  EXPECT_EQ(result.status, ExitStatus::kOk);
}

TEST(RunAsProcessTest, FaultBecomesExitStatus) {
  RunResult result = RunAsProcess([] { throw Fault::Segfault(0xdead); });
  EXPECT_EQ(result.status, ExitStatus::kSegfault);
  EXPECT_NE(result.detail.find("dead"), std::string::npos);
}

TEST(RunAsProcessTest, NonFaultExceptionsPropagate) {
  // Only simulated crashes are "process exits"; harness bugs must surface.
  EXPECT_THROW(RunAsProcess([] { throw std::runtime_error("harness bug"); }),
               std::runtime_error);
}

TEST(RunAsProcessTest, CodeInjectionFlagCarriedThrough) {
  RunResult result = RunAsProcess([] { throw Fault::StackSmash("f", true); });
  EXPECT_EQ(result.status, ExitStatus::kStackSmash);
  EXPECT_TRUE(result.possible_code_injection);
}

TEST(ExitStatusTest, EveryFaultKindMapsToAStatus) {
  EXPECT_EQ(ExitStatusFromFault(FaultKind::kSegfault), ExitStatus::kSegfault);
  EXPECT_EQ(ExitStatusFromFault(FaultKind::kBoundsViolation), ExitStatus::kBoundsTerminated);
  EXPECT_EQ(ExitStatusFromFault(FaultKind::kStackSmash), ExitStatus::kStackSmash);
  EXPECT_EQ(ExitStatusFromFault(FaultKind::kHeapCorruption), ExitStatus::kHeapCorruption);
  EXPECT_EQ(ExitStatusFromFault(FaultKind::kDoubleFree), ExitStatus::kHeapCorruption);
  EXPECT_EQ(ExitStatusFromFault(FaultKind::kInvalidFree), ExitStatus::kHeapCorruption);
  EXPECT_EQ(ExitStatusFromFault(FaultKind::kBudgetExhausted), ExitStatus::kBudgetExhausted);
  EXPECT_EQ(ExitStatusFromFault(FaultKind::kStackOverflow), ExitStatus::kSegfault);
}

TEST(ExitStatusTest, NamesAreStable) {
  EXPECT_STREQ(ExitStatusName(ExitStatus::kOk), "ok");
  EXPECT_STREQ(ExitStatusName(ExitStatus::kSegfault), "segfault");
  EXPECT_STREQ(ExitStatusName(ExitStatus::kBudgetExhausted), "hang (budget exhausted)");
}

// A minimal crashable app for WorkerPool tests.
struct FlakyWorker {
  static int constructions;
  FlakyWorker() { ++constructions; }
  void Work(bool crash) {
    if (crash) {
      throw Fault::Segfault(0x1000);
    }
    ++handled;
  }
  int handled = 0;
};
int FlakyWorker::constructions = 0;

TEST(WorkerPoolTest, DispatchRoundRobins) {
  FlakyWorker::constructions = 0;
  WorkerPool<FlakyWorker> pool(3, [] { return std::make_unique<FlakyWorker>(); });
  EXPECT_EQ(FlakyWorker::constructions, 3);
  for (int i = 0; i < 6; ++i) {
    pool.Dispatch([](FlakyWorker& w) { w.Work(false); });
  }
  EXPECT_EQ(pool.worker(0).handled, 2);
  EXPECT_EQ(pool.worker(1).handled, 2);
  EXPECT_EQ(pool.worker(2).handled, 2);
  EXPECT_EQ(pool.restarts(), 0u);
}

TEST(WorkerPoolTest, CrashReplacesOnlyThatWorker) {
  FlakyWorker::constructions = 0;
  WorkerPool<FlakyWorker> pool(2, [] { return std::make_unique<FlakyWorker>(); });
  pool.Dispatch([](FlakyWorker& w) { w.Work(false); });  // worker 0: handled=1
  RunResult crash = pool.Dispatch([](FlakyWorker& w) { w.Work(true); });  // worker 1 dies
  EXPECT_TRUE(crash.crashed());
  EXPECT_EQ(pool.restarts(), 1u);
  EXPECT_EQ(FlakyWorker::constructions, 3);  // 2 initial + 1 replacement
  EXPECT_EQ(pool.worker(0).handled, 1);      // survivor kept its state
  EXPECT_EQ(pool.worker(1).handled, 0);      // replacement is fresh
}

TEST(WorkerPoolTest, RepeatedCrashesKeepPoolAlive) {
  WorkerPool<FlakyWorker> pool(2, [] { return std::make_unique<FlakyWorker>(); });
  for (int i = 0; i < 10; ++i) {
    pool.Dispatch([](FlakyWorker& w) { w.Work(true); });
  }
  EXPECT_EQ(pool.restarts(), 10u);
  RunResult ok = pool.Dispatch([](FlakyWorker& w) { w.Work(false); });
  EXPECT_TRUE(ok.ok());
}

TEST(WorkerPoolTest, WorkResultVisibleAfterDispatch) {
  WorkerPool<FlakyWorker> pool(1, [] { return std::make_unique<FlakyWorker>(); });
  int sum = 0;
  pool.Dispatch([&](FlakyWorker& w) {
    w.Work(false);
    sum = w.handled;
  });
  EXPECT_EQ(sum, 1);
}

}  // namespace
}  // namespace fob
