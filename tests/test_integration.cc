// End-to-end integration: the whole §4 environment in one process.
//
// Five failure-oblivious servers, interleaved legitimate work and attacks,
// a regenerating Apache pool, and the administrator's error-log digest at
// the end — the "deployed into daily use" story, compressed.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/apache.h"
#include "src/apps/mc.h"
#include "src/apps/mutt.h"
#include "src/apps/pine.h"
#include "src/apps/sendmail.h"
#include "src/harness/workloads.h"
#include "src/mail/mbox.h"
#include "src/net/imap.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

TEST(IntegrationTest, ADayInTheOpenSourceEnvironment) {
  // --- the mail path: sendmail receives, pine reads -----------------------
  SendmailApp sendmail(AccessPolicy::kFailureOblivious);
  for (int i = 0; i < 5; ++i) {
    sendmail.HandleSession(MakeSendmailSession("user@localhost", 128));
    sendmail.HandleSession(MakeSendmailAttackSession());
  }
  ASSERT_EQ(sendmail.local_mailbox().size(), 5u);

  // Hand the delivered mail (plus a crafted message) to Pine as an mbox.
  std::vector<MailMessage> delivered = sendmail.local_mailbox();
  delivered.push_back(
      MailMessage::Make(MakePineAttackFrom(), "user@local", "important", "see attachment\n"));
  PineApp pine(AccessPolicy::kFailureOblivious, SerializeMbox(delivered));
  EXPECT_EQ(pine.IndexLines().size(), 6u);
  EXPECT_TRUE(pine.ReadMessage(0).ok);
  EXPECT_TRUE(pine.MoveMessage(0, "saved").ok);

  // --- the web path: a pool of apache workers under mixed load -------------
  Vfs docroot = MakeApacheDocroot();
  WorkerPool<ApacheApp> pool(3, [&] {
    return std::make_unique<ApacheApp>(AccessPolicy::kFailureOblivious, &docroot,
                                       ApacheApp::DefaultConfigText());
  });
  int served = 0;
  for (int i = 0; i < 30; ++i) {
    HttpResponse response;
    RunResult result = pool.Dispatch([&](ApacheApp& app) {
      response = app.Handle(MakeHttpGet(i % 5 == 0 ? MakeApacheAttackUrl() : "/index.html"));
    });
    if (result.ok() && response.status == 200) {
      ++served;
    }
  }
  EXPECT_EQ(served, 30);
  EXPECT_EQ(pool.restarts(), 0u);  // failure-oblivious workers never die

  // --- the file-management path -------------------------------------------
  McApp mc(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(true));
  mc.memory().set_access_budget(100'000'000);
  EXPECT_TRUE(mc.BrowseTgz(MakeMcAttackTgz()).ok);
  MakeMcTree(mc.fs(), "/home/user/docs", 256 << 10);
  EXPECT_TRUE(mc.Copy("/home/user/docs", "/home/user/backup"));

  // --- the IMAP path ---------------------------------------------------------
  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {MailMessage::Make("a@b", "me", "s", "b\n")});
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  EXPECT_FALSE(mutt.OpenFolder(MakeMuttAttackFolderName()).ok);
  EXPECT_TRUE(mutt.OpenFolder("INBOX").ok);

  // --- the administrator reads the logs --------------------------------------
  for (Memory* memory : {&sendmail.memory(), &pine.memory(), &mc.memory(), &mutt.memory()}) {
    EXPECT_GT(memory->log().total_errors(), 0u);
    std::string summary = memory->log().Summary();
    EXPECT_NE(summary.find("memory-error log:"), std::string::npos);
  }
  // The logs name the famous buffers.
  EXPECT_NE(sendmail.memory().log().Summary().find("prescan::addr_buf"), std::string::npos);
  EXPECT_NE(mutt.memory().log().Summary().find("utf7_buf"), std::string::npos);
  EXPECT_NE(pine.memory().log().Summary().find("from_quote_buf"), std::string::npos);
}

TEST(IntegrationTest, BoundsCheckEnvironmentIsUnusable) {
  // §4.7's point in one test: in the same environment, the Bounds Check
  // versions of three of the five servers cannot even start.
  RunResult sendmail_boot = RunAsProcess([] { SendmailApp daemon(AccessPolicy::kBoundsCheck); });
  EXPECT_TRUE(sendmail_boot.crashed());

  RunResult pine_boot = RunAsProcess(
      [] { PineApp pine(AccessPolicy::kBoundsCheck, MakePineMbox(3, /*include_attack=*/true)); });
  EXPECT_TRUE(pine_boot.crashed());

  RunResult mc_boot = RunAsProcess(
      [] { McApp mc(AccessPolicy::kBoundsCheck, McApp::DefaultConfigText(true)); });
  EXPECT_TRUE(mc_boot.crashed());
}

TEST(IntegrationTest, StandardEnvironmentCrashesOnEveryAttack) {
  Vfs docroot = MakeApacheDocroot();
  WorkerPool<ApacheApp> pool(2, [&] {
    return std::make_unique<ApacheApp>(AccessPolicy::kStandard, &docroot,
                                       ApacheApp::DefaultConfigText());
  });
  for (int i = 0; i < 5; ++i) {
    pool.Dispatch([&](ApacheApp& app) { app.Handle(MakeHttpGet(MakeApacheAttackUrl())); });
  }
  EXPECT_EQ(pool.restarts(), 5u);
}

}  // namespace
}  // namespace fob
