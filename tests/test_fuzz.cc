// The seeded mutation fuzzer (src/harness/fuzz.h): determinism (same seed
// ⇒ byte-identical corpus and discovered-site set), minimizer monotonicity
// (every minimized finding still triggers its full new-site set), discovery
// beyond the §4 baselines for both post-paper servers, and the corpus wire
// format's round-trip + malformed-input hardening.

#include "src/harness/fuzz.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace fob {
namespace {

// Bounded options every execution-heavy test shares: enough iterations to
// reach the staging-buffer sites reliably, few enough to stay test-speed.
FuzzOptions SmokeOptions() {
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 120;
  options.max_findings = 4;
  return options;
}

std::set<SiteId> DiscoveredSites(const FuzzResult& result) {
  std::set<SiteId> sites;
  for (const FuzzFinding& finding : result.findings) {
    for (const MemSiteStat& stat : finding.new_sites) {
      sites.insert(stat.site);
    }
  }
  return sites;
}

// Every finding's minimized request must still trigger every site the
// finding claims — re-executed from scratch, not trusted from the run.
void ExpectMonotoneMinimization(const FuzzResult& result) {
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const FuzzFinding& finding = result.findings[i];
    std::vector<MemSiteStat> sites = ExecuteRequestForSites(
        result.server, finding.request, result.options.policy, result.options.access_budget);
    std::set<SiteId> seen;
    for (const MemSiteStat& stat : sites) {
      seen.insert(stat.site);
    }
    for (const MemSiteStat& stat : finding.new_sites) {
      EXPECT_EQ(seen.count(stat.site), 1u)
          << "finding " << i << " lost site " << stat.Label() << " in minimization";
    }
  }
}

TEST(FuzzTest, ArchiveSameSeedYieldsIdenticalCorpusAndDiscoversNewSites) {
  FuzzOptions options = SmokeOptions();
  FuzzResult first = RunFuzzer(Server::kArchive, options);
  FuzzResult second = RunFuzzer(Server::kArchive, options);

  // Discovery: at least one finding, and every discovered site escapes the
  // §4 baseline streams.
  ASSERT_FALSE(first.findings.empty()) << first.log;
  for (const FuzzFinding& finding : first.findings) {
    ASSERT_FALSE(finding.new_sites.empty());
    for (const MemSiteStat& stat : finding.new_sites) {
      EXPECT_EQ(first.baseline_sites.count(stat.site), 0u)
          << stat.Label() << " is a baseline site, not a discovery";
    }
  }

  // Determinism: same seed ⇒ identical corpus, byte for byte, and the
  // identical discovered-site set.
  EXPECT_EQ(first.baseline_sites, second.baseline_sites);
  EXPECT_EQ(first.executed, second.executed);
  EXPECT_EQ(first.log, second.log);
  ASSERT_EQ(first.findings.size(), second.findings.size());
  for (size_t i = 0; i < first.findings.size(); ++i) {
    EXPECT_EQ(first.findings[i].request.Serialize(), second.findings[i].request.Serialize())
        << "corpus case " << i << " diverged";
    EXPECT_EQ(first.findings[i].generation, second.findings[i].generation);
  }
  EXPECT_EQ(DiscoveredSites(first), DiscoveredSites(second));

  ExpectMonotoneMinimization(first);
}

TEST(FuzzTest, CodecDiscoversSitesBeyondTheBaseline) {
  FuzzResult result = RunFuzzer(Server::kCodec, SmokeOptions());
  ASSERT_FALSE(result.findings.empty()) << result.log;
  for (const FuzzFinding& finding : result.findings) {
    ASSERT_FALSE(finding.new_sites.empty());
    for (const MemSiteStat& stat : finding.new_sites) {
      EXPECT_EQ(result.baseline_sites.count(stat.site), 0u)
          << stat.Label() << " is a baseline site, not a discovery";
    }
  }
  ExpectMonotoneMinimization(result);
}

// ---- Corpus wire format -----------------------------------------------------

TEST(FuzzCorpusFormatTest, RequestSerializationRoundTrips) {
  ServerRequest request;
  request.tag = RequestTag::kAttack;
  request.client_id = 3;
  request.op = "upload";
  request.target = std::string("slot\twith\ttabs");
  request.arg = "line\nbreak";
  request.arg2 = std::string("nul\0inside", 10);
  request.payload = "\x01\x7f\xff percent % escapes";
  std::string wire = request.Serialize();
  std::optional<ServerRequest> parsed = ServerRequest::Deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Serialize(), wire);
  EXPECT_EQ(parsed->target, request.target);
  EXPECT_EQ(parsed->arg2, request.arg2);
  EXPECT_EQ(parsed->payload, request.payload);
}

TEST(FuzzCorpusFormatTest, ManifestLineRoundTrips) {
  CorpusCase record;
  record.file = "case_002.req";
  record.seed = 424242;
  record.generation = 17;
  record.sites = {0x1234abcdull, 0xffffffffffffffffull};
  std::string line = FormatManifestLine(record);
  auto parsed = ParseManifestLine(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->file, record.file);
  EXPECT_EQ(parsed->seed, record.seed);
  EXPECT_EQ(parsed->generation, record.generation);
  EXPECT_EQ(parsed->sites, record.sites);
  EXPECT_EQ(FormatManifestLine(*parsed), line);
}

TEST(FuzzCorpusFormatTest, MalformedManifestLinesAreRejected) {
  // Each of these is one deliberate corruption of a valid line.
  const char* malformed[] = {
      "",                                       // empty
      "case.req\t1\t2",                         // too few fields
      "case.req\t1\t2\t0x10\textra",            // too many fields
      "\t1\t2\t0x10",                           // empty file name
      "case.req\tnope\t2\t0x10",                // unparseable seed
      "case.req\t1\t2x\t0x10",                  // trailing junk in generation
      "case.req\t1\t2\t",                       // empty site list
      "case.req\t1\t2\t10",                     // site without 0x prefix
      "case.req\t1\t2\t0x10,0xzz",              // non-hex site digits
      "case.req\t1\t2\t0x0",                    // the invalid site id
      "case.req\t1\t2\t0x10,",                  // trailing comma
  };
  for (const char* line : malformed) {
    EXPECT_FALSE(ParseManifestLine(line).has_value()) << "accepted: '" << line << "'";
  }
}

}  // namespace
}  // namespace fob
