// Attack-strength sweeps: behaviour must change monotonically and exactly
// at the documented boundaries.
//
// Each vulnerable routine has a threshold below which the input is
// legitimate and above which it is an overflow; these parameterized sweeps
// pin the threshold (off-by-one regressions in ported bug mechanics are
// precisely what would silently invalidate the §4 experiments).

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/mutt.h"
#include "src/apps/pine.h"
#include "src/apps/sendmail.h"
#include "src/codec/utf7.h"
#include "src/codec/utf8.h"
#include "src/harness/workloads.h"
#include "src/mail/mbox.h"
#include "src/net/imap.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

// ---- Pine: quotable-character threshold -------------------------------------

class PineQuoteSweep : public ::testing::TestWithParam<size_t> {};
INSTANTIATE_TEST_SUITE_P(Quotables, PineQuoteSweep, ::testing::Values(0u, 1u, 2u, 3u, 8u, 64u));

TEST_P(PineQuoteSweep, OverflowExactlyWhenEstimateUndershoots) {
  size_t quotable = GetParam();
  // estimate = len + quotable/2 + 1; needed = len + quotable + 1.
  bool should_overflow = quotable / 2 < quotable;  // i.e. quotable >= 1... but:
  // quotable == 1: estimate = len + 0 + 1, needed = len + 2 -> overflow by 1.
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(0, false));
  uint64_t errors_before = pine.memory().log().write_errors();
  std::string from = "user" + std::string(quotable, '\\') + "@x";
  pine.QuoteFromVulnerable(from);
  uint64_t errors = pine.memory().log().write_errors() - errors_before;
  if (should_overflow) {
    EXPECT_GT(errors, 0u) << "quotable=" << quotable;
    // Overflow size is exactly the estimate shortfall: ceil(quotable/2)
    // data bytes (plus the terminating NUL when it lands out of bounds).
    EXPECT_LE(errors, quotable - quotable / 2 + 1) << "quotable=" << quotable;
  } else {
    EXPECT_EQ(errors, 0u);
  }
}

// ---- Sendmail: triple-count threshold ---------------------------------------

class SendmailPairSweep : public ::testing::TestWithParam<size_t> {};
INSTANTIATE_TEST_SUITE_P(Pairs, SendmailPairSweep, ::testing::Values(0u, 1u, 2u, 8u, 32u, 128u));

TEST_P(SendmailPairSweep, OobWritesScaleWithTriples) {
  size_t pairs = GetParam();
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  uint64_t before = daemon.memory().log().write_errors();
  std::string parsed, error;
  bool accepted = daemon.PrescanAddress(MakeSendmailAttackAddress(pairs), &parsed, &error);
  uint64_t oob = daemon.memory().log().write_errors() - before;
  if (pairs == 0) {
    // 63 filler chars fit exactly; address accepted, nothing out of bounds.
    EXPECT_TRUE(accepted);
    EXPECT_EQ(oob, 0u);
  } else {
    EXPECT_FALSE(accepted);
    // The first triple writes the last in-bounds byte; each further triple
    // is one OOB write; the trailing NUL is OOB once any triple landed.
    EXPECT_EQ(oob, pairs) << "pairs=" << pairs;
  }
}

TEST_P(SendmailPairSweep, StandardCrashesOnlyWhenCanaryReached) {
  size_t pairs = GetParam();
  SendmailApp daemon(AccessPolicy::kStandard);
  RunResult result = RunAsProcess([&] {
    std::string parsed, error;
    daemon.PrescanAddress(MakeSendmailAttackAddress(pairs), &parsed, &error);
  });
  // Buffer is 64 bytes with the canary directly above it (the saved return
  // address). q reaches 63 from the filler; the first triple's unchecked
  // store lands at buf+63 (the last in-bounds byte) and pushes q to 64, so
  // the trailing NUL already clobbers the canary's first byte: a single
  // triple is enough to crash the return. With no triples everything fits.
  if (pairs >= 1) {
    EXPECT_EQ(result.status, ExitStatus::kStackSmash) << "pairs=" << pairs;
  } else {
    EXPECT_TRUE(result.ok()) << "pairs=" << pairs;
  }
}

// ---- Mutt: expansion-ratio threshold -----------------------------------------

class MuttExpansionSweep : public ::testing::TestWithParam<size_t> {};
INSTANTIATE_TEST_SUITE_P(Blocks, MuttExpansionSweep, ::testing::Values(0u, 1u, 2u, 8u, 24u, 64u));

TEST_P(MuttExpansionSweep, TruncationExactlyWhenReferenceExceedsAllocation) {
  size_t blocks = GetParam();
  ImapServer imap;
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  std::string name = "mail/";
  for (size_t i = 0; i < blocks; ++i) {
    name += '\x01';
    name += 'a';
  }
  std::string reference = *Utf8ToUtf7(name);
  size_t allocated = name.size() * 2 + 1;
  Ptr u8 = mutt.memory().NewCString(name);
  Ptr out = mutt.Utf8ToUtf7Port(u8, name.size());
  ASSERT_FALSE(out.IsNull());
  std::string produced = mutt.memory().ReadCString(out, 1 << 14);
  if (reference.size() + 1 > allocated) {
    EXPECT_LT(produced.size(), reference.size()) << "blocks=" << blocks;
    EXPECT_EQ(produced, reference.substr(0, produced.size()));
  } else {
    EXPECT_EQ(produced, reference) << "blocks=" << blocks;
  }
  mutt.memory().Free(out);
  mutt.memory().Free(u8);
}

TEST_P(MuttExpansionSweep, BoundlessAlwaysProducesTheReference) {
  size_t blocks = GetParam();
  ImapServer imap;
  MuttApp mutt(AccessPolicy::kBoundless, &imap);
  std::string name = "folder-";
  for (size_t i = 0; i < blocks; ++i) {
    name += '\x02';
    name += 'b';
  }
  Ptr u8 = mutt.memory().NewCString(name);
  Ptr out = mutt.Utf8ToUtf7Port(u8, name.size());
  ASSERT_FALSE(out.IsNull());
  EXPECT_EQ(mutt.memory().ReadCString(out, 1 << 14), *Utf8ToUtf7(name));
  mutt.memory().Free(out);
  mutt.memory().Free(u8);
}

// ---- UTF-7 random fuzz round-trip ---------------------------------------------

TEST(Utf7FuzzTest, RandomBmpStringsRoundTrip) {
  uint64_t state = 0x12345678;
  auto next = [&state]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 2685821657736338717ull;
  };
  for (int round = 0; round < 200; ++round) {
    std::string utf8;
    size_t length = 1 + next() % 20;
    for (size_t i = 0; i < length; ++i) {
      uint32_t cp = static_cast<uint32_t>(next() % 0xfffd) + 1;
      if (cp >= 0xd800 && cp <= 0xdfff) {
        cp = 0x40;  // avoid surrogates (not representable in UTF-16 units)
      }
      utf8 += Utf8Encode(cp);
    }
    auto utf7 = Utf8ToUtf7(utf8);
    ASSERT_TRUE(utf7.has_value()) << "round " << round;
    EXPECT_LE(utf7->size(), Utf7MaxOutputBytes(utf8.size()));
    auto back = Utf7ToUtf8(*utf7);
    ASSERT_TRUE(back.has_value()) << "round " << round << " utf7=" << *utf7;
    EXPECT_EQ(*back, utf8) << "round " << round;
  }
}

}  // namespace
}  // namespace fob
